package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"coordsample/internal/core"
	"coordsample/internal/dataset"
	"coordsample/internal/estimate"
	"coordsample/internal/rank"
)

func init() {
	register(Experiment{
		ID:    "sharding",
		Paper: "§3 + merge lemma",
		Desc:  "sharded concurrent ingestion: throughput scaling and exactness vs the single-stream pipeline",
		Run:   runSharding,
	})
}

// shardingDataset draws a heavy-tailed two-assignment dataset sized by the
// scale option; ingestion throughput, not estimation error, is what this
// experiment measures, so keys are synthetic and weights lognormal.
func shardingDataset(opts Options) *dataset.Dataset {
	n := int(400000 * opts.Scale)
	if n < 1000 {
		n = 1000
	}
	rng := rand.New(rand.NewSource(int64(opts.Seed)))
	bld := dataset.NewBuilder("period1", "period2")
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%08d", i)
		base := math.Exp(rng.NormFloat64() * 2)
		if rng.Float64() < 0.85 {
			bld.Add(0, key, base*(0.5+rng.Float64()))
		}
		if rng.Float64() < 0.85 {
			bld.Add(1, key, base*(0.5+rng.Float64()))
		}
	}
	return bld.Build()
}

// runSharding times the single-stream dispersed pipeline against the sharded
// concurrent one across a shard-count sweep, and verifies per-assignment
// sketches are bit-identical (the merge-lemma guarantee: sharding changes
// wall-clock time, never the sample).
func runSharding(opts Options) Result {
	opts = opts.WithDefaults()
	ds := shardingDataset(opts)
	k := 1024
	if m := ds.NumKeys() / 4; k > m && m >= 1 {
		k = m
	}
	cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: opts.Seed, K: k}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shardSweep := []int{1, 2, 4, 8, 16}
	if opts.Shards > 0 {
		shardSweep = []int{opts.Shards}
	}
	// Repeat each timing a few times and keep the fastest, the usual way to
	// suppress scheduler noise in throughput measurements.
	reps := 3
	offered := 0
	for b := 0; b < ds.NumAssignments(); b++ {
		offered += ds.SupportSize(b)
	}

	baseline, baseSummary := time.Duration(math.MaxInt64), core.SummarizeDispersed(cfg, ds)
	for r := 0; r < reps; r++ {
		start := time.Now()
		core.SummarizeDispersed(cfg, ds)
		if d := time.Since(start); d < baseline {
			baseline = d
		}
	}

	t := Table{
		Title: fmt.Sprintf("sharded ingestion, %d keys × %d assignments, k=%d, %d workers/assignment (best of %d)",
			ds.NumKeys(), ds.NumAssignments(), k, workers, reps),
		Columns: []string{"shards", "elapsed", "keys/s", "speedup", "identical"},
	}
	t.AddRow("single", baseline.Round(time.Microsecond).String(),
		fsci(float64(offered)/baseline.Seconds()), "1.00", "-")

	for _, shards := range shardSweep {
		elapsed := time.Duration(math.MaxInt64)
		var summary *estimate.Dispersed
		for r := 0; r < reps; r++ {
			start := time.Now()
			s := core.SummarizeDispersedParallel(cfg, ds, shards, workers)
			if d := time.Since(start); d < elapsed {
				elapsed = d
			}
			summary = s
		}
		t.AddRow(
			fmt.Sprintf("%d", shards),
			elapsed.Round(time.Microsecond).String(),
			fsci(float64(offered)/elapsed.Seconds()),
			fmt.Sprintf("%.2f", baseline.Seconds()/elapsed.Seconds()),
			fmt.Sprintf("%v", identicalSummaries(summary, baseSummary)),
		)
	}
	return Result{Tables: []Table{t}}
}

// identicalSummaries reports whether two dispersed summaries hold
// bit-identical per-assignment sketches — entries and, for bottom-k
// sketches, both conditioning ranks (a merge regression could corrupt
// r_{k+1} while leaving the entries equal). This is the exactness column of
// the sharding table.
func identicalSummaries(a, b *estimate.Dispersed) bool {
	if a.NumAssignments() != b.NumAssignments() {
		return false
	}
	type conditioned interface {
		KthRank() float64
		Threshold() float64
	}
	for bi := 0; bi < a.NumAssignments(); bi++ {
		as, bs := a.Sketch(bi), b.Sketch(bi)
		ae, be := as.Entries(), bs.Entries()
		if len(ae) != len(be) {
			return false
		}
		for i := range ae {
			if ae[i] != be[i] {
				return false
			}
		}
		ac, aok := as.(conditioned)
		bc, bok := bs.(conditioned)
		if aok != bok {
			return false
		}
		if aok && (ac.KthRank() != bc.KthRank() || ac.Threshold() != bc.Threshold()) {
			return false
		}
	}
	return true
}

package experiments

import (
	"fmt"

	"coordsample/internal/core"
	"coordsample/internal/datagen"
	"coordsample/internal/dataset"
	"coordsample/internal/estimate"
	"coordsample/internal/evalstats"
	"coordsample/internal/hashing"
	"coordsample/internal/rank"
)

func init() {
	register(Experiment{
		ID: "unweighted", Paper: "Section 9.2 (in-text)",
		Desc: "Weighted vs unweighted coordinated sketches: ΣV of the min estimator",
		Run:  runUnweighted,
	})
	register(Experiment{
		ID: "jaccard", Paper: "Theorem 4.1 (methodological)",
		Desc: "k-mins weighted Jaccard estimates vs exact similarity on Netflix month pairs",
		Run:  runJaccard,
	})
	register(Experiment{
		ID: "ablation_family", Paper: "Section 9 (\"results for EXP ranks were similar\")",
		Desc: "IPPS vs EXP rank families: ΣV of coordinated min/max/L1 on IP dataset1",
		Run:  runAblationFamily,
	})
	register(Experiment{
		ID: "ablation_sketch", Paper: "Section 3 (design choice)",
		Desc: "Bottom-k RC vs Poisson HT at equal expected size: single-assignment ΣV",
		Run:  runAblationSketch,
	})
	register(Experiment{
		ID: "ablation_fixedk", Paper: "Section 4 (fixed distinct keys)",
		Desc: "Fixed-k vs fixed-distinct-budget colocated summaries at equal storage",
		Run:  runAblationFixedK,
	})
	register(Experiment{
		ID: "ablation_generic", Paper: "Section 6 (generic consistent estimator)",
		Desc: "Inclusive vs generic-consistent colocated estimators: ΣV for max",
		Run:  runAblationGeneric,
	})
}

func runUnweighted(opts Options) Result {
	opts = opts.WithDefaults()
	w := newWorkloads(opts)
	var res Result
	combos := []struct {
		name string
		ds   *dataset.Dataset
	}{
		{"IP1 destIP/bytes", w.ip1Dispersed(datagen.KeyDstIP, datagen.WeightBytes)},
		{"Netflix months{1,2}", w.netflix()},
	}
	for _, c := range combos {
		R := []int{0, 1}
		points := uniformBaselineSweep(c.ds, R, opts.Ks, opts.Runs, opts.Seed)
		t := Table{Title: "Weighted vs unweighted coordination — " + c.name,
			Columns: []string{"k", "SV[weighted min-l]", "SV[uniform min]", "ratio"}}
		for _, p := range points {
			t.AddRow(fmt.Sprint(p.K), fsci(p.WeightedSV), fsci(p.UniformSV), fmtRatio(p.UniformSV, p.WeightedSV))
		}
		res.Tables = append(res.Tables, t)
	}
	return res
}

func runJaccard(opts Options) Result {
	opts = opts.WithDefaults()
	ds := newWorkloads(opts).netflix()
	t := Table{Title: "k-mins weighted Jaccard (independent-differences ranks) — Netflix month pairs",
		Columns: []string{"months", "exact", "k=64", "k=256", "k=1024"}}
	pairs := [][2]int{{0, 1}, {0, 5}, {0, 11}, {5, 6}}
	for _, p := range pairs {
		exact := ds.WeightedJaccard([]int{p[0], p[1]}, nil)
		row := []string{fmt.Sprintf("%d,%d", p[0]+1, p[1]+1), ffix(exact)}
		for _, k := range []int{64, 256, 1024} {
			cfg := core.Config{Family: rank.EXP, Mode: rank.IndependentDifferences, Seed: opts.Seed, K: k}
			row = append(row, ffix(core.KMinsJaccard(cfg, ds, p[0], p[1])))
		}
		t.Rows = append(t.Rows, row)
	}
	return Result{Tables: []Table{t}}
}

func runAblationFamily(opts Options) Result {
	opts = opts.WithDefaults()
	ds := newWorkloads(opts).ip1Dispersed(datagen.KeyDstIP, datagen.WeightBytes)
	R := []int{0, 1}
	sub := ds.Restrict(R)
	all := firstR(2)
	truthMin := evalstats.TruthOf(sub, estimate.MinOf())
	truthMax := evalstats.TruthOf(sub, estimate.MaxOf())
	truthL1 := evalstats.TruthOf(sub, estimate.RangeOf())

	t := Table{Title: "IPPS vs EXP ranks — IP1 destIP/bytes, coordinated dispersed estimators",
		Columns: []string{"k", "family", "SV[min-l]", "SV[max]", "SV[L1-l]"}}
	for _, k := range capKs(opts.Ks, sub.NumKeys()) {
		for _, fam := range []rank.Family{rank.IPPS, rank.EXP} {
			var seMin, seMax, seL1 float64
			for run := 0; run < opts.Runs; run++ {
				seed := hashing.Mix64(opts.Seed + uint64(run) + uint64(k)*7919)
				cfg := core.Config{Family: fam, Mode: rank.SharedSeed, Seed: seed, K: k}
				d := core.SummarizeDispersed(cfg, sub)
				maxAW := d.Max(all)
				minAW := d.MinLSet(all)
				seMin += truthMin.SquaredError(minAW)
				seMax += truthMax.SquaredError(maxAW)
				seL1 += truthL1.SquaredError(estimate.Sub(maxAW, minAW))
			}
			n := float64(opts.Runs)
			t.AddRow(fmt.Sprint(k), fam.String(), fsci(seMin/n), fsci(seMax/n), fsci(seL1/n))
		}
	}
	return Result{Tables: []Table{t}}
}

func runAblationSketch(opts Options) Result {
	opts = opts.WithDefaults()
	ds := newWorkloads(opts).ip1Dispersed(datagen.KeyDstIP, datagen.WeightBytes)
	truth := evalstats.TruthOf(ds, estimate.SingleOf(0))
	t := Table{Title: "Bottom-k RC vs Poisson HT at equal expected size — IP1 destIP/bytes period1",
		Columns: []string{"k", "SV[bottom-k RC]", "SV[Poisson HT]", "ratio"}}
	col := ds.Column(0)
	for _, k := range capKs(opts.Ks, ds.NumKeys()) {
		tau := core.PoissonTau(rank.IPPS, col, float64(k))
		var seB, seP float64
		for run := 0; run < opts.Runs; run++ {
			seed := hashing.Mix64(opts.Seed + uint64(run) + uint64(k)*104729)
			cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: seed, K: k}
			seB += truth.SquaredError(core.SummarizeDispersed(cfg, ds).Single(0))
			seP += truth.SquaredError(core.PoissonSingle(cfg, ds, 0, tau))
		}
		n := float64(opts.Runs)
		t.AddRow(fmt.Sprint(k), fsci(seB/n), fsci(seP/n), fmtRatio(seB, seP))
	}
	return Result{Tables: []Table{t}}
}

func runAblationFixedK(opts Options) Result {
	opts = opts.WithDefaults()
	ds := newWorkloads(opts).ip1Colocated(datagen.KeyDstIP,
		[]datagen.IPWeight{datagen.WeightBytes, datagen.WeightPackets, datagen.WeightFlows, datagen.WeightUniform})
	truth := evalstats.TruthOf(ds, estimate.SingleOf(0))
	t := Table{Title: "Fixed-k vs fixed-distinct-budget colocated summaries — IP1 destIP, bytes estimator",
		Columns: []string{"k", "size(fixed-k)", "size(budget)", "ℓ", "SV[fixed-k]", "SV[budget]"}}
	for _, k := range capKs(opts.Ks, ds.NumKeys()/ds.NumAssignments()) {
		var seF, seB, sizeF, sizeB, ellSum float64
		for run := 0; run < opts.Runs; run++ {
			seed := hashing.Mix64(opts.Seed + uint64(run) + uint64(k)*15485863)
			cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: seed, K: k}
			cF := core.SummarizeColocated(cfg, ds)
			seF += truth.SquaredError(cF.Inclusive(estimate.SingleOf(0)))
			sizeF += float64(cF.DistinctKeys())
			cB, ell := core.SummarizeColocatedFixed(cfg, ds)
			seB += truth.SquaredError(cB.Inclusive(estimate.SingleOf(0)))
			sizeB += float64(cB.DistinctKeys())
			ellSum += float64(ell)
		}
		n := float64(opts.Runs)
		t.AddRow(fmt.Sprint(k), fint(sizeF/n), fint(sizeB/n), fint(ellSum/n), fsci(seF/n), fsci(seB/n))
	}
	return Result{Tables: []Table{t}}
}

func runAblationGeneric(opts Options) Result {
	opts = opts.WithDefaults()
	ds := newWorkloads(opts).ip1Colocated(datagen.KeyDstIP,
		[]datagen.IPWeight{datagen.WeightBytes, datagen.WeightPackets, datagen.WeightUniform})
	truth := evalstats.TruthOf(ds, estimate.MaxOf(0, 1))
	t := Table{Title: "Inclusive vs generic-consistent estimator — IP1 destIP, max{bytes,packets}",
		Columns: []string{"k", "SV[inclusive]", "SV[generic]", "generic/inclusive"}}
	f := estimate.MaxOf(0, 1)
	for _, k := range capKs(opts.Ks, ds.NumKeys()) {
		var seI, seG float64
		for run := 0; run < opts.Runs; run++ {
			seed := hashing.Mix64(opts.Seed + uint64(run) + uint64(k)*32452843)
			cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: seed, K: k}
			c := core.SummarizeColocated(cfg, ds)
			seI += truth.SquaredError(c.Inclusive(f))
			seG += truth.SquaredError(c.GenericConsistent(f))
		}
		t.AddRow(fmt.Sprint(k), fsci(seI/float64(opts.Runs)), fsci(seG/float64(opts.Runs)), fmtRatio(seG, seI))
	}
	return Result{Tables: []Table{t}}
}

package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"coordsample/internal/cluster"
	"coordsample/internal/core"
	"coordsample/internal/obs"
	"coordsample/internal/rank"
	"coordsample/internal/server"
	"coordsample/internal/shard"
	"coordsample/internal/sketch"
)

func init() {
	register(Experiment{
		ID:    "cluster",
		Paper: "not from the paper",
		Desc:  "scatter-gather cluster: partitioned ingest across in-process peers over real TCP, two-phase freeze, merged answers verified bit-identical to the offline pipeline, then one peer killed to measure graceful degradation",
		Run:   runCluster,
	})
}

// clusterPeer is one in-process cluster member on a real TCP port.
type clusterPeer struct {
	srv     *server.Server
	httpSrv *http.Server
	addr    string
}

func (p *clusterPeer) kill() {
	p.httpSrv.Close()
	p.srv.Close()
}

// runCluster measures the cluster serving layer end to end: N in-process
// cws-serve peers on real TCP ports, each owning its slice of the keyspace
// under the routing-hash partition, ingested concurrently with the stream
// routed to each key's owner. The scatter-gather router then runs a
// two-phase cluster freeze and answers /cluster/query; the "identical"
// column verifies the merged estimate bit-identical to the offline
// pipeline over the whole stream (the merge-lemma exactness claim). The
// last peer is then killed and the query repeated: the degraded answer
// must still be bit-identical to the offline pipeline over the surviving
// partitions' keys, with coverage (N-1)/N.
func runCluster(opts Options) Result {
	opts = opts.WithDefaults()
	numPeers := opts.Peers
	if numPeers < 2 {
		numPeers = 3
	}
	ds := serveDataset(opts)
	k := 1024
	if m := ds.NumKeys() / 4; k > m && m >= 1 {
		k = m
	}
	cols, offered := flattenColumns(ds)
	numAsg := len(cols)
	cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: opts.Seed, K: k}

	// Offline references: the whole stream, and the stream minus the
	// killed peer's partition.
	offlineL1 := func(skipPeer int) float64 {
		sketches := make([]*sketch.BottomK, numAsg)
		for b := range cols {
			sk := core.NewAssignmentSketcher(cfg, b)
			for i, key := range cols[b].keys {
				if skipPeer >= 0 && shard.ShardOf(key, numPeers) == skipPeer {
					continue
				}
				sk.Offer(key, cols[b].weights[i])
			}
			sketches[b] = sk.Sketch()
		}
		d, err := core.CombineDispersed(cfg, sketches)
		if err != nil {
			panic(err)
		}
		return d.RangeLSet(nil).Estimate(nil)
	}
	refFull := offlineL1(-1)
	refSurvivors := offlineL1(numPeers - 1)

	// Start the peers, each guarding its partition, then the router.
	peers := make([]*clusterPeer, numPeers)
	addrs := make([]string, numPeers)
	for i := range peers {
		i := i
		srv, err := server.New(server.Config{
			Sample: cfg, Assignments: numAsg, Shards: 4, Workers: opts.Workers, Lanes: 0,
			OwnsKey: func(key string) bool { return shard.ShardOf(key, numPeers) == i },
		})
		if err != nil {
			panic(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(fmt.Sprintf("cluster: %v", err))
		}
		httpSrv := &http.Server{Handler: srv}
		go func() { _ = httpSrv.Serve(ln) }()
		peers[i] = &clusterPeer{srv: srv, httpSrv: httpSrv, addr: ln.Addr().String()}
		addrs[i] = peers[i].addr
	}
	defer func() {
		for _, p := range peers {
			p.kill()
		}
	}()
	router, err := cluster.New(cluster.Config{Peers: addrs, Self: -1, Sample: cfg, Assignments: numAsg})
	if err != nil {
		panic(err)
	}
	defer router.Close()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("cluster: %v", err))
	}
	routerSrv := &http.Server{Handler: router}
	go func() { _ = routerSrv.Serve(rln) }()
	defer routerSrv.Close()
	base := "http://" + rln.Addr().String()

	// Partitioned ingest: binary /ingest chunks routed to each key's
	// owner, one streaming client per peer, concurrently.
	bodies := make([][]byte, numPeers)
	counts := make([]int, numPeers)
	for b := range cols {
		for i, key := range cols[b].keys {
			p := shard.ShardOf(key, numPeers)
			bodies[p] = server.AppendBinaryOffer(bodies[p], b, key, cols[b].weights[i])
			counts[p]++
		}
	}
	start := time.Now()
	errCh := make(chan error, numPeers)
	for i := range peers {
		go func(i int) {
			client := newLoadClient()
			resp, err := client.Post("http://"+addrs[i]+"/ingest", server.ContentTypeBinaryIngest, bytes.NewReader(bodies[i]))
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("peer %d: /ingest status %d", i, resp.StatusCode)
				}
			}
			errCh <- err
		}(i)
	}
	for range peers {
		if err := <-errCh; err != nil {
			panic(fmt.Sprintf("cluster: %v", err))
		}
	}
	ingestElapsed := time.Since(start)

	// Two-phase cluster freeze, then the merged scatter-gather answer.
	fs := time.Now()
	freezeBody := mustPostJSON(base + "/cluster/freeze")
	freezeElapsed := time.Since(fs).Round(time.Microsecond)
	if freezeBody["published"] != true {
		panic(fmt.Sprintf("cluster: freeze not published: %v", freezeBody))
	}

	t := Table{
		Title: fmt.Sprintf("scatter-gather cluster, %d offers (%d keys × %d assignments) partitioned across %d peers, k=%d",
			offered, ds.NumKeys(), numAsg, numPeers, k),
		Columns: []string{"phase", "offers/s", "freeze", "q_p50", "q_p95", "q_p99", "reached", "coverage", "degraded", "identical"},
	}
	// Each phase's scatter-gather query latency distribution, from the
	// router's client side: repeated queries recorded into a histogram so
	// the BENCH row carries percentiles rather than one sample.
	const queryReps = 20
	queryPhase := func(ref float64) (map[string]any, []string, bool) {
		h := &obs.Histogram{}
		var q map[string]any
		identical := true
		for i := 0; i < queryReps; i++ {
			qs := time.Now()
			q = mustGetJSON(base + "/cluster/query?agg=L1")
			h.Record(time.Since(qs))
			identical = identical && q["estimate"].(float64) == ref
		}
		return q, pctCols(h), identical
	}
	q, pct, identical := queryPhase(refFull)
	row := []string{
		"full strength",
		fsci(float64(offered) / ingestElapsed.Seconds()),
		freezeElapsed.String(),
	}
	row = append(row, pct...)
	t.AddRow(append(row,
		fmt.Sprintf("%.0f/%d", q["reached"].(float64), numPeers),
		fmt.Sprintf("%.3f", q["coverage"].(float64)),
		yesNo(q["degraded"] == true),
		fmt.Sprintf("%v", identical),
	)...)

	// Kill the last peer and answer from the survivors: graceful
	// degradation, with the estimate exact over the covered partitions.
	peers[numPeers-1].kill()
	q, pct, identical = queryPhase(refSurvivors)
	row = []string{"1 peer killed", "-", "-"}
	row = append(row, pct...)
	t.AddRow(append(row,
		fmt.Sprintf("%.0f/%d", q["reached"].(float64), numPeers),
		fmt.Sprintf("%.3f", q["coverage"].(float64)),
		yesNo(q["degraded"] == true),
		fmt.Sprintf("%v", identical),
	)...)
	return Result{Tables: []Table{t}}
}

// yesNo renders a boolean without the literal strings true/false, which
// the CI smoke gates reserve for the identical columns.
func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func mustGetJSON(url string) map[string]any {
	resp, err := http.Get(url)
	if err != nil {
		panic(fmt.Sprintf("cluster: GET %s: %v", url, err))
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		panic(fmt.Sprintf("cluster: GET %s: %v", url, err))
	}
	if resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("cluster: GET %s: status %d: %v", url, resp.StatusCode, out))
	}
	return out
}

func mustPostJSON(url string) map[string]any {
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		panic(fmt.Sprintf("cluster: POST %s: %v", url, err))
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		panic(fmt.Sprintf("cluster: POST %s: %v", url, err))
	}
	if resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("cluster: POST %s: status %d: %v", url, resp.StatusCode, out))
	}
	return out
}

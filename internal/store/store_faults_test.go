package store

import (
	"errors"
	"strings"
	"testing"

	"coordsample/internal/faults"
)

// openWritableFaults opens a writable store with an injected fault set.
func openWritableFaults(t *testing.T, dir string, retain int, fs *faults.Set) *Store {
	t.Helper()
	s, err := Open(Config{Dir: dir, Retain: retain, Sample: testSample, Assignments: 2, Faults: fs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestSegmentWriteErrorLeavesEpochUnacknowledged: an ENOSPC-style failure
// writing the segment fails the append before anything is acknowledged;
// the store is not broken (nothing reached the manifest) and the retried
// append persists the same epoch, recovered bit-identically.
func TestSegmentWriteErrorLeavesEpochUnacknowledged(t *testing.T) {
	dir := t.TempDir()
	epochs := buildEpochs(t, 2, 150)
	fs := faults.MustParse(FaultSegmentWrite + ":err,on=2")
	s := openWritableFaults(t, dir, 4, fs)

	if _, err := s.AppendEpoch(epochs[0]); err != nil {
		t.Fatal(err)
	}
	_, err := s.AppendEpoch(epochs[1])
	var inj *faults.InjectedError
	if !errors.As(err, &inj) || inj.Point != FaultSegmentWrite {
		t.Fatalf("append error %v is not the injected segment-write fault", err)
	}
	if s.Epoch() != 1 {
		t.Fatalf("failed append acknowledged: epoch %d", s.Epoch())
	}
	// Nothing reached the manifest, so the store is not broken: the retry
	// succeeds in place.
	epoch, err := s.AppendEpoch(epochs[1])
	if err != nil || epoch != 2 {
		t.Fatalf("retry: epoch %d, err %v", epoch, err)
	}
	s.Close()

	re := openWritable(t, dir, 4)
	if re.Epoch() != 2 {
		t.Fatalf("recovered epoch %d, want 2", re.Epoch())
	}
	sameSketchSet(t, "recovered cumulative", re.Cumulative(), mergeAll(t, epochs))
	if got := fs.Hits(FaultSegmentWrite); got != 3 {
		t.Fatalf("segment-write hit %d times, want 3", got)
	}
}

// TestSegmentFsyncErrorLeavesEpochUnacknowledged: same contract when the
// segment fsync fails instead of the write.
func TestSegmentFsyncErrorLeavesEpochUnacknowledged(t *testing.T) {
	dir := t.TempDir()
	epochs := buildEpochs(t, 1, 150)
	s := openWritableFaults(t, dir, 4, faults.MustParse(FaultSegmentFsync+":err,on=1"))

	_, err := s.AppendEpoch(epochs[0])
	var inj *faults.InjectedError
	if !errors.As(err, &inj) || inj.Point != FaultSegmentFsync {
		t.Fatalf("append error %v is not the injected segment-fsync fault", err)
	}
	if s.Epoch() != 0 {
		t.Fatalf("failed append acknowledged: epoch %d", s.Epoch())
	}
	if epoch, err := s.AppendEpoch(epochs[0]); err != nil || epoch != 1 {
		t.Fatalf("retry: epoch %d, err %v", epoch, err)
	}
}

// TestTornSegmentWriteRefusedAsCorruptOnReopen: a torn segment write that
// lies about success leaves the manifest acknowledging bytes the file does
// not hold. Recovery must surface that as a typed *CorruptError — never
// serve the half-written sketches.
func TestTornSegmentWriteRefusedAsCorruptOnReopen(t *testing.T) {
	dir := t.TempDir()
	epochs := buildEpochs(t, 1, 150)
	s := openWritableFaults(t, dir, 4, faults.MustParse(FaultSegmentWrite+":torn,on=1"))

	// The tear is silent: the append "succeeds" and acknowledges the epoch.
	if epoch, err := s.AppendEpoch(epochs[0]); err != nil || epoch != 1 {
		t.Fatalf("torn append: epoch %d, err %v", epoch, err)
	}
	s.Close()

	_, err := Open(Config{Dir: dir, Retain: 4, Sample: testSample, Assignments: 2})
	var corrupt *CorruptError
	if !errors.As(err, &corrupt) {
		t.Fatalf("reopen over a torn segment: %v, want *CorruptError", err)
	}
	if !strings.Contains(corrupt.Path, "epoch-000001.seg") {
		t.Fatalf("corruption attributed to %q, want the torn segment", corrupt.Path)
	}
}

// TestManifestAppendFailureBreaksStoreUntilReopen: a failed manifest
// append may strand partial bytes, so the store refuses further appends
// (PR-5 contract) until a reopen re-establishes a clean tail.
func TestManifestAppendFailureBreaksStoreUntilReopen(t *testing.T) {
	dir := t.TempDir()
	epochs := buildEpochs(t, 2, 150)
	s := openWritableFaults(t, dir, 4, faults.MustParse(FaultManifestAppend+":err,on=2"))

	if _, err := s.AppendEpoch(epochs[0]); err != nil {
		t.Fatal(err)
	}
	_, err := s.AppendEpoch(epochs[1])
	var inj *faults.InjectedError
	if !errors.As(err, &inj) || inj.Point != FaultManifestAppend {
		t.Fatalf("append error %v is not the injected manifest-append fault", err)
	}
	// Append-refusal: even though the fault will not fire again, the store
	// must refuse to append onto a possibly-partial manifest line.
	if _, err := s.AppendEpoch(epochs[1]); err == nil || !strings.Contains(err.Error(), "reopen") {
		t.Fatalf("broken store accepted an append (err %v)", err)
	}
	s.Close()

	re := openWritable(t, dir, 4)
	if re.Epoch() != 1 {
		t.Fatalf("recovered epoch %d, want 1", re.Epoch())
	}
	if epoch, err := re.AppendEpoch(epochs[1]); err != nil || epoch != 2 {
		t.Fatalf("append after reopen: epoch %d, err %v", epoch, err)
	}
	sameSketchSet(t, "cumulative after heal", re.Cumulative(), mergeAll(t, epochs))
}

// TestTornManifestAppendHealedOnReopen: "err,torn" leaves half the
// manifest line durably in the file — the bytes a real short write
// strands. Reopen must drop the unacknowledged torn tail, recover the
// acknowledged prefix bit-identically, and accept appends again.
func TestTornManifestAppendHealedOnReopen(t *testing.T) {
	dir := t.TempDir()
	epochs := buildEpochs(t, 2, 150)
	s := openWritableFaults(t, dir, 4, faults.MustParse(FaultManifestAppend+":err,torn,on=2"))

	if _, err := s.AppendEpoch(epochs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendEpoch(epochs[1]); err == nil {
		t.Fatal("torn manifest append reported success")
	}
	s.Close()

	re := openWritable(t, dir, 4)
	if re.Epoch() != 1 {
		t.Fatalf("recovered epoch %d, want 1", re.Epoch())
	}
	sameSketchSet(t, "recovered epoch 1", re.Cumulative(), mergeAll(t, epochs[:1]))
	if epoch, err := re.AppendEpoch(epochs[1]); err != nil || epoch != 2 {
		t.Fatalf("append after torn-tail heal: epoch %d, err %v", epoch, err)
	}
	sameSketchSet(t, "cumulative after heal", re.Cumulative(), mergeAll(t, epochs))
}

// TestManifestFsyncFailureBreaksStore: after a failed manifest fsync the
// line's durability is unknown, so the epoch must not be reported
// acknowledged and the store must refuse further appends until reopen.
func TestManifestFsyncFailureBreaksStore(t *testing.T) {
	dir := t.TempDir()
	epochs := buildEpochs(t, 1, 150)
	s := openWritableFaults(t, dir, 4, faults.MustParse(FaultManifestFsync+":err,on=1"))

	_, err := s.AppendEpoch(epochs[0])
	var inj *faults.InjectedError
	if !errors.As(err, &inj) || inj.Point != FaultManifestFsync {
		t.Fatalf("append error %v is not the injected manifest-fsync fault", err)
	}
	if _, err := s.AppendEpoch(epochs[0]); err == nil || !strings.Contains(err.Error(), "reopen") {
		t.Fatalf("broken store accepted an append (err %v)", err)
	}
	s.Close()

	// The line reached the file before the (simulated) fsync failure, so
	// reopen legitimately recovers the epoch — the contract is only that
	// the caller was never told it was acknowledged, and that recovered
	// state is self-consistent.
	re := openWritable(t, dir, 4)
	if re.Epoch() != 1 {
		t.Fatalf("recovered epoch %d, want 1", re.Epoch())
	}
	sameSketchSet(t, "recovered cumulative", re.Cumulative(), mergeAll(t, epochs))
}

// TestSegmentFaultDuringCompactionIsTypedCompactionError: the compaction
// path writes its cumulative segment through the same fault points; a
// failure there surfaces as the PR-5 *CompactionError (epoch itself stays
// acknowledged) wrapping the injected fault.
func TestSegmentFaultDuringCompactionIsTypedCompactionError(t *testing.T) {
	dir := t.TempDir()
	epochs := buildEpochs(t, 2, 150)
	// Hits 1 and 2 are the two epoch segments; hit 3 is the cumulative
	// segment written by the compaction that append 2 triggers (retain=1).
	s := openWritableFaults(t, dir, 1, faults.MustParse(FaultSegmentWrite+":err,on=3"))

	if _, err := s.AppendEpoch(epochs[0]); err != nil {
		t.Fatal(err)
	}
	epoch, err := s.AppendEpoch(epochs[1])
	if epoch != 2 {
		t.Fatalf("epoch %d, want 2 (the epoch is acknowledged before compaction runs)", epoch)
	}
	var comp *CompactionError
	if !errors.As(err, &comp) {
		t.Fatalf("compaction failure %v is not a *CompactionError", err)
	}
	var inj *faults.InjectedError
	if !errors.As(err, &inj) || inj.Point != FaultSegmentWrite {
		t.Fatalf("compaction failure %v does not wrap the injected fault", err)
	}
	s.Close()

	re := openWritable(t, dir, 1)
	if re.Epoch() != 2 {
		t.Fatalf("recovered epoch %d, want 2", re.Epoch())
	}
	sameSketchSet(t, "recovered cumulative", re.Cumulative(), mergeAll(t, epochs))
}

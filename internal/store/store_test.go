package store

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coordsample/internal/core"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

var testSample = core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 77, K: 32}

// buildEpochs synthesizes n epochs of two-assignment sketch sets over
// disjoint key ranges (the pre-aggregation contract across epochs).
func buildEpochs(t *testing.T, n, keysPerEpoch int) [][]*sketch.BottomK {
	t.Helper()
	a := testSample.Assigner()
	rng := rand.New(rand.NewSource(5))
	epochs := make([][]*sketch.BottomK, n)
	key := 0
	for e := range epochs {
		builders := make([]*sketch.BottomKBuilder, 2)
		for b := range builders {
			builders[b] = sketch.NewBottomKBuilderWithFingerprint(testSample.K, a.Fingerprint(b, testSample.K))
		}
		for i := 0; i < keysPerEpoch; i++ {
			k := fmt.Sprintf("key-%06d", key)
			key++
			for b, bld := range builders {
				w := math.Exp(rng.NormFloat64())
				bld.Offer(k, a.Rank(k, b, w), w)
			}
		}
		set := make([]*sketch.BottomK, 2)
		for b, bld := range builders {
			set[b] = bld.Sketch()
		}
		epochs[e] = set
	}
	return epochs
}

func openWritable(t *testing.T, dir string, retain int) *Store {
	t.Helper()
	s, err := Open(Config{Dir: dir, Retain: retain, Sample: testSample, Assignments: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func appendAll(t *testing.T, s *Store, epochs [][]*sketch.BottomK) {
	t.Helper()
	for i, set := range epochs {
		epoch, err := s.AppendEpoch(set)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if epoch != i+1 {
			t.Fatalf("append %d returned epoch %d", i, epoch)
		}
	}
}

func sameSketch(t *testing.T, label string, got, want *sketch.BottomK) {
	t.Helper()
	if got.K() != want.K() || got.Fingerprint() != want.Fingerprint() ||
		math.Float64bits(got.KthRank()) != math.Float64bits(want.KthRank()) ||
		math.Float64bits(got.Threshold()) != math.Float64bits(want.Threshold()) ||
		got.Size() != want.Size() {
		t.Fatalf("%s: sketch shape differs", label)
	}
	for i, e := range want.Entries() {
		if got.Entries()[i] != e {
			t.Fatalf("%s: entry %d = %+v, want %+v", label, i, got.Entries()[i], e)
		}
	}
}

func sameSketchSet(t *testing.T, label string, got, want []*sketch.BottomK) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d sketches, want %d", label, len(got), len(want))
	}
	for b := range want {
		sameSketch(t, fmt.Sprintf("%s[b=%d]", label, b), got[b], want[b])
	}
}

// mergeAll is the offline reference: the exact merge of a run of epochs.
func mergeAll(t *testing.T, epochs [][]*sketch.BottomK) []*sketch.BottomK {
	t.Helper()
	parts := make([][]*sketch.BottomK, 2)
	for _, set := range epochs {
		for b, sk := range set {
			parts[b] = append(parts[b], sk)
		}
	}
	out, err := mergeColumns(parts)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRecoveryBitIdentical: reopening a store recovers every acknowledged
// epoch and the cumulative merge bit-identically — entries, conditioning
// ranks, fingerprints.
func TestRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	epochs := buildEpochs(t, 5, 200)

	s := openWritable(t, dir, 8)
	appendAll(t, s, epochs)
	liveCum := s.Cumulative()
	s.Close()

	r := openWritable(t, dir, 8)
	if r.Epoch() != 5 {
		t.Fatalf("recovered epoch %d, want 5", r.Epoch())
	}
	sameSketchSet(t, "cumulative", r.Cumulative(), liveCum)
	sameSketchSet(t, "cumulative-vs-offline", r.Cumulative(), mergeAll(t, epochs))
	retained := r.Retained()
	if len(retained) != 5 {
		t.Fatalf("recovered %d retained epochs, want 5", len(retained))
	}
	for i, rec := range retained {
		if rec.Epoch != i+1 {
			t.Fatalf("retained[%d].Epoch = %d", i, rec.Epoch)
		}
		sameSketchSet(t, fmt.Sprintf("epoch %d", rec.Epoch), rec.Sketches, epochs[i])
	}
	// Range queries over the recovered ring equal the offline merge.
	got, err := r.Range(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	sameSketchSet(t, "range 2..4", got, mergeAll(t, epochs[1:4]))
}

// TestCrashAfterUnacknowledgedAppend simulates a SIGKILL between the
// segment rename and the manifest append: the segment exists but no
// manifest line does. Recovery must serve exactly the acknowledged prefix,
// and the next append must reuse the epoch number cleanly.
func TestCrashAfterUnacknowledgedAppend(t *testing.T) {
	dir := t.TempDir()
	epochs := buildEpochs(t, 4, 150)

	s := openWritable(t, dir, 8)
	appendAll(t, s, epochs[:3])
	s.Close()

	// Simulate: epoch 4's segment landed, its manifest line did not.
	manifest, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	s2 := openWritable(t, dir, 8)
	if _, err := s2.AppendEpoch(epochs[3]); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if err := os.WriteFile(filepath.Join(dir, manifestName), manifest, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openWritable(t, dir, 8)
	if r.Epoch() != 3 {
		t.Fatalf("recovered epoch %d, want the acknowledged prefix 3", r.Epoch())
	}
	sameSketchSet(t, "prefix cumulative", r.Cumulative(), mergeAll(t, epochs[:3]))
	// Epoch 4 again: the orphaned segment is overwritten, not tripped over.
	if epoch, err := r.AppendEpoch(epochs[3]); err != nil || epoch != 4 {
		t.Fatalf("re-append after orphan: epoch %d, err %v", epoch, err)
	}
	sameSketchSet(t, "re-appended cumulative", r.Cumulative(), mergeAll(t, epochs))
}

// TestTornManifestTailTolerated: a crash mid-manifest-append leaves a
// partial final line; recovery drops it (it was never acknowledged) and
// serves the prefix.
func TestTornManifestTailTolerated(t *testing.T) {
	for _, cut := range []int{1, 10, 20} {
		dir := t.TempDir()
		epochs := buildEpochs(t, 3, 100)
		s := openWritable(t, dir, 8)
		appendAll(t, s, epochs)
		s.Close()

		mpath := filepath.Join(dir, manifestName)
		data, err := os.ReadFile(mpath)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
		last := lines[len(lines)-1]
		if cut >= len(last) {
			t.Fatalf("cut %d exceeds final line length %d", cut, len(last))
		}
		torn := strings.Join(lines[:len(lines)-1], "") + last[:cut]
		if err := os.WriteFile(mpath, []byte(torn), 0o644); err != nil {
			t.Fatal(err)
		}

		r := openWritable(t, dir, 8)
		if r.Epoch() != 2 {
			t.Fatalf("cut=%d: recovered epoch %d, want 2", cut, r.Epoch())
		}
		sameSketchSet(t, "torn-tail cumulative", r.Cumulative(), mergeAll(t, epochs[:2]))
		r.Close()
	}
}

// TestCorruptionIsTyped: non-tail manifest damage and segment damage (flip,
// truncation, deletion) refuse to open with typed errors — corrupt
// acknowledged state is never silently served.
func TestCorruptionIsTyped(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		s := openWritable(t, dir, 8)
		appendAll(t, s, buildEpochs(t, 3, 100))
		s.Close()
		return dir
	}
	reopen := func(dir string) error {
		s, err := Open(Config{Dir: dir, Retain: 8, Sample: testSample, Assignments: 2})
		if err == nil {
			s.Close()
		}
		return err
	}

	t.Run("corrupt manifest middle line", func(t *testing.T) {
		dir := build(t)
		mpath := filepath.Join(dir, manifestName)
		data, _ := os.ReadFile(mpath)
		lines := strings.Split(string(data), "\n")
		lines[1] = "E x" + lines[1][3:] // damage epoch 1's record
		os.WriteFile(mpath, []byte(strings.Join(lines, "\n")), 0o644)
		var ce *CorruptError
		if err := reopen(dir); !errors.As(err, &ce) {
			t.Fatalf("err = %v, want *CorruptError", err)
		}
	})

	t.Run("flipped segment byte", func(t *testing.T) {
		dir := build(t)
		seg := filepath.Join(dir, segmentName("epoch", 2))
		data, _ := os.ReadFile(seg)
		data[len(data)/2] ^= 0x01
		os.WriteFile(seg, data, 0o644)
		var ce *CorruptError
		if err := reopen(dir); !errors.As(err, &ce) {
			t.Fatalf("err = %v, want *CorruptError", err)
		}
	})

	t.Run("truncated segment", func(t *testing.T) {
		dir := build(t)
		seg := filepath.Join(dir, segmentName("epoch", 3))
		data, _ := os.ReadFile(seg)
		os.WriteFile(seg, data[:len(data)-7], 0o644)
		var ce *CorruptError
		if err := reopen(dir); !errors.As(err, &ce) {
			t.Fatalf("err = %v, want *CorruptError", err)
		}
	})

	t.Run("missing segment", func(t *testing.T) {
		dir := build(t)
		os.Remove(filepath.Join(dir, segmentName("epoch", 1)))
		var ce *CorruptError
		if err := reopen(dir); !errors.As(err, &ce) {
			t.Fatalf("err = %v, want *CorruptError", err)
		}
	})

	t.Run("damaged header", func(t *testing.T) {
		dir := build(t)
		mpath := filepath.Join(dir, manifestName)
		data, _ := os.ReadFile(mpath)
		data[0] ^= 0x01
		os.WriteFile(mpath, data, 0o644)
		var ce *CorruptError
		if err := reopen(dir); !errors.As(err, &ce) {
			t.Fatalf("err = %v, want *CorruptError", err)
		}
	})
}

// TestConfigMismatchIsTyped: opening a store under a different sampling
// configuration (or assignment count) fails with *MismatchError.
func TestConfigMismatchIsTyped(t *testing.T) {
	dir := t.TempDir()
	s := openWritable(t, dir, 8)
	appendAll(t, s, buildEpochs(t, 2, 100))
	s.Close()

	other := testSample
	other.Seed = 78
	var me *MismatchError
	if _, err := Open(Config{Dir: dir, Retain: 8, Sample: other, Assignments: 2}); !errors.As(err, &me) {
		t.Fatalf("different seed: err = %v, want *MismatchError", err)
	}
	if _, err := Open(Config{Dir: dir, Retain: 8, Sample: testSample, Assignments: 3}); !errors.As(err, &me) {
		t.Fatalf("different assignments: err = %v, want *MismatchError", err)
	}
}

// TestCompactionBoundsDiskAndKeepsCumulativeExact: with retain=r, only the
// r most recent epochs keep segment files, compacted history lives in one
// cumulative segment, and the cumulative sketches stay bit-identical to
// the full offline merge across reopenings.
func TestCompactionBoundsDiskAndKeepsCumulativeExact(t *testing.T) {
	dir := t.TempDir()
	const retain = 3
	epochs := buildEpochs(t, 10, 120)

	s := openWritable(t, dir, retain)
	appendAll(t, s, epochs)
	if got := s.CompactedThrough(); got != 7 {
		t.Fatalf("compacted through %d, want 7", got)
	}
	sameSketchSet(t, "live cumulative", s.Cumulative(), mergeAll(t, epochs))
	s.Close()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) != retain+1 {
		t.Fatalf("disk holds %d segments %v, want retain+1 = %d", len(segs), segs, retain+1)
	}

	r := openWritable(t, dir, retain)
	if r.Epoch() != 10 || r.CompactedThrough() != 7 {
		t.Fatalf("recovered epoch %d / through %d", r.Epoch(), r.CompactedThrough())
	}
	sameSketchSet(t, "recovered cumulative", r.Cumulative(), mergeAll(t, epochs))

	// Compacted epochs are not range-queryable; retained ones are exact.
	if _, err := r.Range(6, 8); err == nil || !strings.Contains(err.Error(), "compacted") {
		t.Fatalf("range into compacted history: err = %v", err)
	}
	if _, err := r.Range(8, 11); err == nil {
		t.Fatal("range beyond last epoch accepted")
	}
	got, err := r.Range(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	sameSketchSet(t, "range 8..10", got, mergeAll(t, epochs[7:]))
	one, err := r.Range(9, 9)
	if err != nil {
		t.Fatal(err)
	}
	sameSketchSet(t, "range 9..9", one, epochs[8])
}

// TestRetainZeroCompactsEverything: retain=0 keeps no individual epochs —
// pure durability, bounded to one cumulative segment.
func TestRetainZeroCompactsEverything(t *testing.T) {
	dir := t.TempDir()
	epochs := buildEpochs(t, 4, 100)
	s := openWritable(t, dir, 0)
	appendAll(t, s, epochs)
	if len(s.Retained()) != 0 || s.CompactedThrough() != 4 {
		t.Fatalf("retained %d / through %d, want 0 / 4", len(s.Retained()), s.CompactedThrough())
	}
	sameSketchSet(t, "cumulative", s.Cumulative(), mergeAll(t, epochs))
	s.Close()
	r := openWritable(t, dir, 0)
	sameSketchSet(t, "recovered", r.Cumulative(), mergeAll(t, epochs))
}

// TestReadOnlyOpen: a store opened without a configuration recovers
// everything, reconstructs the sampling configuration from the stored
// sketches, and refuses writes.
func TestReadOnlyOpen(t *testing.T) {
	dir := t.TempDir()
	epochs := buildEpochs(t, 4, 100)
	s := openWritable(t, dir, 2)
	appendAll(t, s, epochs)
	s.Close()

	r, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Epoch() != 4 || r.Assignments() != 2 {
		t.Fatalf("read-only recovered epoch %d / assignments %d", r.Epoch(), r.Assignments())
	}
	cfg, ok := r.SampleConfig()
	if !ok || cfg != testSample {
		t.Fatalf("SampleConfig = %+v, %v; want %+v", cfg, ok, testSample)
	}
	sameSketchSet(t, "read-only cumulative", r.Cumulative(), mergeAll(t, epochs))
	if _, err := r.AppendEpoch(epochs[0]); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("read-only append: err = %v", err)
	}

	if _, err := Open(Config{Dir: t.TempDir()}); err == nil || !strings.Contains(err.Error(), "not a store") {
		t.Fatalf("read-only open of empty dir: err = %v", err)
	}
}

// TestGarbageCollection: tmp orphans and unreferenced segments are removed
// on writable open.
func TestGarbageCollection(t *testing.T) {
	dir := t.TempDir()
	s := openWritable(t, dir, 8)
	appendAll(t, s, buildEpochs(t, 2, 50))
	s.Close()
	for _, junk := range []string{"epoch-000009.seg", "cum-000001.seg", "epoch-000001.seg.tmp-junk"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r := openWritable(t, dir, 8)
	r.Close()
	for _, junk := range []string{"epoch-000009.seg", "cum-000001.seg", "epoch-000001.seg.tmp-junk"} {
		if _, err := os.Stat(filepath.Join(dir, junk)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("%s survived garbage collection", junk)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, segmentName("epoch", 2))); err != nil {
		t.Errorf("referenced segment collected: %v", err)
	}
}

// TestOpenValidation: invalid configurations are rejected up front.
func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{Dir: t.TempDir(), Sample: testSample}); err == nil {
		t.Error("assignments=0 with sample accepted")
	}
	if _, err := Open(Config{Dir: t.TempDir(), Assignments: 2}); err == nil {
		t.Error("zero sample with assignments accepted")
	}
	if _, err := Open(Config{Dir: t.TempDir(), Retain: -1, Sample: testSample, Assignments: 2}); err == nil {
		t.Error("negative retain accepted")
	}
}

// TestTerminatedCorruptFinalLineIsCorruption: only an *unterminated*
// final manifest line is a torn append. A newline-terminated final line
// that fails its checksum is acknowledged state hit by bit rot and must
// refuse to open — not be silently dropped (which would discard the
// acknowledged epoch and garbage-collect its segment).
func TestTerminatedCorruptFinalLineIsCorruption(t *testing.T) {
	dir := t.TempDir()
	s := openWritable(t, dir, 8)
	appendAll(t, s, buildEpochs(t, 3, 100))
	s.Close()

	mpath := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the final line, keeping its trailing newline.
	mut := append([]byte(nil), data...)
	mut[len(mut)-10] ^= 0x01
	if err := os.WriteFile(mpath, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, err := Open(Config{Dir: dir, Retain: 8, Sample: testSample, Assignments: 2}); !errors.As(err, &ce) {
		t.Fatalf("newline-terminated corrupt final line: err = %v, want *CorruptError", err)
	}
	// The acknowledged segment must survive the failed open.
	if _, err := os.Stat(filepath.Join(dir, segmentName("epoch", 3))); err != nil {
		t.Fatalf("failed open deleted acknowledged segment: %v", err)
	}
}

// TestTornTailIsTruncatedOnReopen: a writable open heals a torn manifest
// tail by truncating it, so the next append starts on a fresh line
// instead of concatenating onto partial bytes.
func TestTornTailIsTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	epochs := buildEpochs(t, 4, 100)
	s := openWritable(t, dir, 8)
	appendAll(t, s, epochs[:3])
	s.Close()

	mpath := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final line: drop its newline and half its bytes.
	if err := os.WriteFile(mpath, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}

	r := openWritable(t, dir, 8)
	if r.Epoch() != 2 {
		t.Fatalf("recovered epoch %d, want 2", r.Epoch())
	}
	// Appends after the heal must produce a cleanly parseable manifest.
	if epoch, err := r.AppendEpoch(epochs[2]); err != nil || epoch != 3 {
		t.Fatalf("append after torn-tail heal: epoch %d, err %v", epoch, err)
	}
	if epoch, err := r.AppendEpoch(epochs[3]); err != nil || epoch != 4 {
		t.Fatalf("second append after heal: epoch %d, err %v", epoch, err)
	}
	r.Close()
	r2 := openWritable(t, dir, 8)
	if r2.Epoch() != 4 {
		t.Fatalf("re-recovered epoch %d, want 4", r2.Epoch())
	}
	sameSketchSet(t, "healed cumulative", r2.Cumulative(), mergeAll(t, epochs))
}

// TestBrokenAfterManifestAppendFailure: once a manifest append fails, the
// store refuses further appends until a reopen (which truncates the
// partial bytes) — a later append must never concatenate onto junk.
func TestBrokenAfterManifestAppendFailure(t *testing.T) {
	dir := t.TempDir()
	epochs := buildEpochs(t, 3, 80)
	s := openWritable(t, dir, 8)
	appendAll(t, s, epochs[:1])

	// Force the next manifest write to fail: close the handle underneath.
	s.mu.Lock()
	s.manifest.Close()
	s.mu.Unlock()
	if _, err := s.AppendEpoch(epochs[1]); err == nil {
		t.Fatal("append with a closed manifest succeeded")
	}
	if _, err := s.AppendEpoch(epochs[2]); err == nil || !strings.Contains(err.Error(), "reopen") {
		t.Fatalf("append after failure: err = %v, want refusal pointing at reopen", err)
	}

	// Reopen recovers the acknowledged prefix and appends work again.
	s.Close() // release the writer flock, as the dying process would
	r := openWritable(t, dir, 8)
	if r.Epoch() != 1 {
		t.Fatalf("recovered epoch %d, want 1", r.Epoch())
	}
	if epoch, err := r.AppendEpoch(epochs[1]); err != nil || epoch != 2 {
		t.Fatalf("append after reopen: epoch %d, err %v", epoch, err)
	}
}

// TestWriterLockIsExclusive: a second writable open of the same directory
// is refused while the first holds the flock (two writers would corrupt
// acknowledged history); read-only opens are unaffected, and the lock
// dies with Close.
func TestWriterLockIsExclusive(t *testing.T) {
	dir := t.TempDir()
	s := openWritable(t, dir, 8)
	appendAll(t, s, buildEpochs(t, 1, 50))

	if _, err := Open(Config{Dir: dir, Retain: 8, Sample: testSample, Assignments: 2}); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second writable open: err = %v, want lock refusal", err)
	}
	ro, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("read-only open while locked: %v", err)
	}
	ro.Close()

	s.Close()
	again := openWritable(t, dir, 8)
	if again.Epoch() != 1 {
		t.Fatalf("reopen after Close: epoch %d, want 1", again.Epoch())
	}
}

// TestRefusesToInitializeOverSegments: a writable open of a directory
// holding segment files but no manifest must refuse — initializing would
// garbage-collect the very data the store exists to protect.
func TestRefusesToInitializeOverSegments(t *testing.T) {
	dir := t.TempDir()
	s := openWritable(t, dir, 8)
	appendAll(t, s, buildEpochs(t, 2, 50))
	s.Close()
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}

	var ce *CorruptError
	if _, err := Open(Config{Dir: dir, Retain: 8, Sample: testSample, Assignments: 2}); !errors.As(err, &ce) {
		t.Fatalf("init over orphaned segments: err = %v, want *CorruptError", err)
	}
	// The segments must survive the refused open.
	for e := 1; e <= 2; e++ {
		if _, err := os.Stat(filepath.Join(dir, segmentName("epoch", e))); err != nil {
			t.Fatalf("refused open deleted segment %d: %v", e, err)
		}
	}
}

// Package store is the durable epoch store: it persists every frozen
// epoch's fingerprinted sketch set to disk and recovers it on startup, so
// a server restart — graceful or SIGKILL — loses nothing that was ever
// acknowledged. It is what turns the in-memory serving layer of
// internal/server into a database-like system: the paper's headline
// scenario is "snapshots of an evolving database at multiple points in
// time" treated as coordinated weight assignments, and retaining the
// per-epoch sketches (rather than only their cumulative merge) is what
// makes time itself queryable — any range of epochs merges on demand into
// the exact sketch of that time window, by the same merge lemma that makes
// sharding exact.
//
// # On-disk layout
//
//	<dir>/MANIFEST            append-only record of acknowledged epochs
//	<dir>/epoch-000042.seg    one retained epoch's sketch set (segment file)
//	<dir>/cum-000034.seg      cumulative segment: epochs 1..34 merged
//	<dir>/LOCK                writer flock (held while a writable Store is open)
//
// Writable opens take an exclusive flock on LOCK: two writers on one
// directory would interleave manifest appends and overwrite each other's
// segments, so the second open is refused. The lock dies with the
// process, so a SIGKILL never wedges the store; read-only opens
// (cws-merge -store) take no lock and work alongside a live server.
//
// A segment file is the multi-sketch framing of internal/sketch
// (EncodeSegment): every assignment's bottom-k sketch as a length-prefixed
// standard wire-codec file, closed by a CRC-32C. Segments are written
// write-tmp → fsync → rename → fsync(dir), so a crash mid-write leaves at
// worst an ignored *.tmp file, never a half-written segment under the
// final name.
//
// # Manifest
//
// The manifest is the commit record: an epoch exists once — and only once
// — its manifest line is durable. The header names the format and the
// assignment count; each subsequent line records one durable action with
// its own CRC-32C:
//
//	cws-store v1 assignments=2
//	E 1 epoch-000001.seg 4242 1a2b3c4d fps=00c0ffee...,00abcdef... 9f8e7d6c
//	C 3 cum-000003.seg 8080 5e6f7a8b fps=... 1c2d3e4f
//
// "E n" acknowledges epoch n (strictly sequential), naming its segment
// file, byte size, segment checksum, and per-assignment fingerprints.
// "C t" acknowledges a compaction: the named cumulative segment holds the
// exact merge of epochs 1..t, and epochs ≤ t are no longer individually
// retained. AppendEpoch returns only after the segment rename and the
// manifest line are both fsynced — that is the acknowledgement point.
//
// # Recovery invariants
//
// Open replays the manifest and reloads every referenced segment under
// strict validation (size, checksum, full wire-codec revalidation,
// fingerprints). The guarantees:
//
//   - Every acknowledged epoch is recovered bit-identically: same entries,
//     same conditioning ranks, same fingerprints — so a restarted server
//     answers every query exactly as the pre-crash server did.
//   - A torn final manifest line (crash mid-append) is tolerated and
//     dropped: it was never acknowledged. Its orphaned segment file, if
//     the rename happened, is overwritten by the next append of the same
//     epoch number and garbage-collected on writable open.
//   - Any other damage — a corrupt non-final manifest line, a missing,
//     truncated, or bit-flipped segment — is acknowledged state that
//     cannot be served; Open fails with a typed *CorruptError rather than
//     ever serving corrupt sketches.
//
// # Compaction
//
// A configurable ring of the most recent epochs is retained for
// epoch-range queries; older epochs are merged into the cumulative
// segment (the merge is exact, so nothing about full-history queries
// changes) and their segment files deleted, keeping disk proportional to
// retain+1 segments. Compaction rewrites the manifest atomically
// (write-tmp → rename), so it also stays bounded.
package store

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"coordsample/internal/core"
	"coordsample/internal/faults"
	"coordsample/internal/obs"
	"coordsample/internal/sketch"
)

// manifestName is the manifest file name inside a store directory.
const manifestName = "MANIFEST"

// manifestHeaderPrefix opens every manifest.
const manifestHeaderPrefix = "cws-store v1 assignments="

// castagnoli is the CRC-32C table guarding manifest lines (segment bodies
// carry their own CRC via the sketch segment framing).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Config configures Open.
type Config struct {
	// Dir is the store directory; created if absent on a writable open.
	Dir string
	// Retain is the ring of most recent epochs kept individually for
	// epoch-range queries; older epochs are compacted into the cumulative
	// segment. 0 compacts every epoch immediately (no time travel).
	Retain int
	// Sample and Assignments describe the sketches the store will hold.
	// Both set (K ≥ 1, Assignments ≥ 1) opens the store writable and
	// verifies every recovered sketch against this configuration; both
	// zero opens read-only, accepting whatever configuration the store
	// holds (the sketches are still fully self-validated).
	Sample      core.Config
	Assignments int
	// Faults injects failures at the store's durability points (see the
	// fault-point names below); nil — the production state — injects
	// nothing.
	Faults *faults.Set
	// Log, when non-nil, receives the store's structured log events
	// (recovery summary, compactions) tagged component=store. Nil
	// discards them.
	Log *slog.Logger
}

// The store's injectable fault points. Each fires once per AppendEpoch
// (or per compaction, for the segment points — compaction writes a
// cumulative segment through the same path).
const (
	// FaultSegmentWrite covers writing a segment's bytes to its temp
	// file: "err" simulates ENOSPC (the append fails, the epoch is never
	// acknowledged); "torn" silently truncates the written bytes while
	// reporting success — the manifest then acknowledges a size the file
	// does not have, which recovery must refuse as a *CorruptError.
	FaultSegmentWrite = "store.segment-write"
	// FaultSegmentFsync covers fsyncing the segment temp file ("err"
	// only).
	FaultSegmentFsync = "store.segment-fsync"
	// FaultManifestAppend covers appending an epoch's manifest line:
	// "err" fails the append (setting the store's broken flag — further
	// appends are refused until reopen); "err,torn" additionally leaves
	// half the line in the file first, the partial bytes a real short
	// write strands, which reopen must heal as a torn tail.
	FaultManifestAppend = "store.manifest-append"
	// FaultManifestFsync covers fsyncing the manifest after a successful
	// append ("err" only; also sets broken — the line may or may not be
	// durable, so the epoch must not be treated as acknowledged).
	FaultManifestFsync = "store.manifest-fsync"
)

// CorruptError reports acknowledged store state that cannot be trusted: a
// corrupt manifest line that is not a torn tail, or a referenced segment
// that is missing, truncated, or fails checksum/validation. The store
// refuses to open rather than serve it.
type CorruptError struct {
	Path   string // offending file
	Detail string
	Err    error
}

func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("store: %s: %s: %v", e.Path, e.Detail, e.Err)
	}
	return fmt.Sprintf("store: %s: %s", e.Path, e.Detail)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// MismatchError reports a store whose recovered contents disagree with the
// configuration it was opened under (different assignment count, or
// sketches fingerprinted under a different Family/Mode/Seed/K) — merging
// the two worlds would corrupt every estimate, so Open fails instead.
type MismatchError struct {
	Detail string
}

func (e *MismatchError) Error() string { return "store: " + e.Detail }

// CompactionError reports that an epoch was durably acknowledged but the
// follow-up compaction failed (disk full, I/O error). The epoch is safe —
// callers should treat the append as successful — and the compaction
// retries on the next append.
type CompactionError struct {
	Err error
}

func (e *CompactionError) Error() string { return fmt.Sprintf("store: compaction: %v", e.Err) }
func (e *CompactionError) Unwrap() error { return e.Err }

// EpochRecord is one retained epoch: its number and its per-assignment
// sketches (index = assignment).
type EpochRecord struct {
	Epoch    int
	Sketches []*sketch.BottomK
}

// storedEpoch is one retained epoch plus the segment accounting (byte
// size and segment CRC, as recorded in the manifest) that a compaction's
// manifest rewrite needs — carried in memory so compaction never re-reads
// kept segment files, and never has to trust a possibly rotten file's own
// trailer for the rewritten manifest line.
type storedEpoch struct {
	EpochRecord
	size int
	crc  uint32
}

// Store is a durable epoch store. Open recovers it; AppendEpoch persists a
// frozen epoch and is the only mutating operation. Methods are safe for
// concurrent use.
type Store struct {
	mu          sync.Mutex
	dir         string
	retain      int
	writable    bool
	sample      core.Config
	assignments int

	epoch    int               // last acknowledged epoch
	through  int               // cumulative segment covers epochs 1..through (0 = none)
	base     []*sketch.BottomK // sketches of the cumulative segment (nil when through == 0)
	retained []storedEpoch     // epochs through+1..epoch, ascending
	cum      []*sketch.BottomK // exact merge of base + retained (nil when epoch == 0)
	meta     []sketch.WireMeta // construction metadata of the stored sketches
	manifest *os.File          // open for append on writable stores
	lock     *os.File          // flock-held LOCK file on writable stores
	broken   bool              // a manifest append failed; appends refused until reopen
	bytes    int64             // total bytes of referenced segment files
	faults   *faults.Set       // injectable durability faults (nil in production)
	log      *slog.Logger      // component-tagged structured logger (never nil)

	// Durability latency histograms, always allocated so the recording
	// sites stay branch-free; a serving process registers them in its
	// metrics registry via Metrics().
	segWriteHist      *obs.Histogram // segment write+fsync+rename, per durable file
	manifestFsyncHist *obs.Histogram // manifest fsync — the epoch ack point
}

// Metrics exposes the store's internal latency histograms so a serving
// process can register them for /metrics exposition.
type Metrics struct {
	SegmentWrite  *obs.Histogram
	ManifestFsync *obs.Histogram
}

// Metrics returns the store's latency histograms.
func (s *Store) Metrics() Metrics {
	return Metrics{SegmentWrite: s.segWriteHist, ManifestFsync: s.manifestFsyncHist}
}

// Open opens (creating, when writable and absent) the store at cfg.Dir and
// recovers all acknowledged epochs. See Config for the writable/read-only
// distinction and the package documentation for the recovery guarantees.
func Open(cfg Config) (*Store, error) {
	writable := cfg.Assignments != 0 || cfg.Sample != (core.Config{})
	s := &Store{
		dir: cfg.Dir, retain: cfg.Retain, writable: writable, faults: cfg.Faults,
		log:          obs.Component(cfg.Log, "store"),
		segWriteHist: &obs.Histogram{}, manifestFsyncHist: &obs.Histogram{},
	}
	if writable {
		if err := cfg.Sample.Check(); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if cfg.Assignments < 1 {
			return nil, fmt.Errorf("store: need at least one assignment, got %d", cfg.Assignments)
		}
		if cfg.Retain < 0 {
			return nil, fmt.Errorf("store: negative retain %d", cfg.Retain)
		}
		s.sample = cfg.Sample
		s.assignments = cfg.Assignments
		s.meta = metasFor(cfg.Sample, cfg.Assignments)
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		// Exclusive writer lock: two writable opens of one directory would
		// interleave manifest appends and overwrite each other's segments,
		// silently corrupting acknowledged history. flock is released
		// automatically if the process dies, so a crash never wedges the
		// store.
		if err := s.acquireLock(); err != nil {
			return nil, err
		}
	}
	if err := s.recover(); err != nil {
		s.releaseLock()
		return nil, err
	}
	if writable {
		s.collectGarbage()
		var err error
		s.manifest, err = os.OpenFile(s.path(manifestName), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			s.releaseLock()
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return s, nil
}

// acquireLock takes the store's exclusive writer flock (non-blocking).
func (s *Store) acquireLock() error {
	f, err := os.OpenFile(s.path("LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return fmt.Errorf("store: %s is locked by another process (two writers would corrupt acknowledged history): %w", s.dir, err)
	}
	s.lock = f
	return nil
}

// releaseLock drops the writer flock, if held.
func (s *Store) releaseLock() {
	if s.lock != nil {
		_ = syscall.Flock(int(s.lock.Fd()), syscall.LOCK_UN)
		s.lock.Close()
		s.lock = nil
	}
}

// metasFor builds the per-assignment wire metadata of a sample config.
func metasFor(sample core.Config, assignments int) []sketch.WireMeta {
	metas := make([]sketch.WireMeta, assignments)
	for b := range metas {
		metas[b] = sketch.WireMeta{Family: sample.Family, Mode: sample.Mode, Seed: sample.Seed, Assignment: b}
	}
	return metas
}

// Close releases the manifest handle. The store's durable state needs no
// shutdown — every acknowledged epoch is already fsynced.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.manifest != nil {
		err = s.manifest.Close()
		s.manifest = nil
	}
	s.releaseLock()
	return err
}

// Writable reports whether the store was opened with a configuration and
// accepts AppendEpoch.
func (s *Store) Writable() bool { return s.writable }

// Epoch returns the last acknowledged epoch (0 for an empty store).
func (s *Store) Epoch() int { s.mu.Lock(); defer s.mu.Unlock(); return s.epoch }

// Assignments returns the per-epoch sketch count (0 for an empty read-only
// store).
func (s *Store) Assignments() int { s.mu.Lock(); defer s.mu.Unlock(); return s.assignments }

// Retain returns the configured retention ring size.
func (s *Store) Retain() int { return s.retain }

// CompactedThrough returns the highest epoch merged into the cumulative
// segment; epochs at or below it are no longer individually queryable.
func (s *Store) CompactedThrough() int { s.mu.Lock(); defer s.mu.Unlock(); return s.through }

// DiskBytes returns the total size of the referenced segment files.
func (s *Store) DiskBytes() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.bytes }

// Retained returns the individually retained epochs, ascending. The
// records (and their sketches) are immutable; the slice is a copy.
func (s *Store) Retained() []EpochRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]EpochRecord, len(s.retained))
	for i, rec := range s.retained {
		out[i] = rec.EpochRecord
	}
	return out
}

// Cumulative returns the exact merged sketches of all acknowledged epochs
// (nil for an empty store) — bit-identical to a single pass over every
// offer ever acknowledged, by the merge lemma. The merge is memoized; it
// is computed eagerly at Open and recomputed on demand after appends (the
// serving layer maintains its own cumulative merge, so the append fast
// path never pays for this one).
func (s *Store) Cumulative() []*sketch.BottomK {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.epoch > 0 && s.cum == nil {
		cum, err := mergeColumns(s.allColumns())
		if err != nil {
			// Impossible: every part carries this store's fingerprint.
			panic(err.Error())
		}
		s.cum = cum
	}
	return s.cum
}

// allColumns lists, per assignment, the cumulative base (if any) followed
// by every retained epoch's sketch — the inputs of the full merge.
func (s *Store) allColumns() [][]*sketch.BottomK {
	parts := make([][]*sketch.BottomK, s.assignments)
	for b := range parts {
		if s.base != nil {
			parts[b] = append(parts[b], s.base[b])
		}
		for _, rec := range s.retained {
			parts[b] = append(parts[b], rec.Sketches[b])
		}
	}
	return parts
}

// SampleConfig reconstructs the sampling configuration of the stored
// sketches (Family, Mode, Seed from the wire metadata; K from the
// sketches). ok is false for an empty store opened read-only.
func (s *Store) SampleConfig() (core.Config, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writable {
		return s.sample, true
	}
	if len(s.meta) == 0 || s.cum == nil {
		return core.Config{}, false
	}
	m := s.meta[0]
	return core.Config{Family: m.Family, Mode: m.Mode, Seed: m.Seed, K: s.cum[0].K()}, true
}

// Range merges the retained epochs lo..hi (inclusive) into the exact
// per-assignment sketches of that time window. Both bounds must lie in the
// retained ring: lo > CompactedThrough() and hi ≤ Epoch().
func (s *Store) Range(lo, hi int) ([]*sketch.BottomK, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := checkRange(lo, hi, s.through, s.epoch); err != nil {
		return nil, err
	}
	parts := make([][]*sketch.BottomK, s.assignments)
	for _, rec := range s.retained {
		if rec.Epoch < lo || rec.Epoch > hi {
			continue
		}
		for b, sk := range rec.Sketches {
			parts[b] = append(parts[b], sk)
		}
	}
	return mergeColumns(parts)
}

// checkRange validates an epoch range against the retained window.
func checkRange(lo, hi, through, epoch int) error {
	if lo < 1 || hi < lo {
		return fmt.Errorf("store: invalid epoch range %d..%d", lo, hi)
	}
	if hi > epoch {
		return fmt.Errorf("store: epoch range %d..%d exceeds last epoch %d", lo, hi, epoch)
	}
	if lo <= through {
		return fmt.Errorf("store: epochs %d..%d are compacted (retained window is %d..%d); raise -retain to keep more history", lo, min(hi, through), through+1, epoch)
	}
	return nil
}

// mergeColumns merges each assignment's sketch list with the exact,
// fingerprint-verified merge.
func mergeColumns(parts [][]*sketch.BottomK) ([]*sketch.BottomK, error) {
	out := make([]*sketch.BottomK, len(parts))
	for b, ps := range parts {
		merged, err := sketch.Merge(ps...)
		if err != nil {
			return nil, fmt.Errorf("store: merging assignment %d: %w", b, err)
		}
		out[b] = merged
	}
	return out, nil
}

// AppendEpoch durably persists one frozen epoch's sketch set (one sketch
// per assignment, fingerprinted under the store's configuration) and
// returns its epoch number. On return the epoch is acknowledged: segment
// and manifest line are fsynced, and any crash afterwards recovers it
// bit-identically. Compaction of epochs that fell out of the retention
// ring runs before returning; if it fails, the error is a
// *CompactionError and the epoch itself stays acknowledged (epoch != 0).
func (s *Store) AppendEpoch(sketches []*sketch.BottomK) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.writable {
		return 0, fmt.Errorf("store: opened read-only (no Sample configuration)")
	}
	if len(sketches) != s.assignments {
		return 0, fmt.Errorf("store: %d sketches for %d assignments", len(sketches), s.assignments)
	}
	if s.broken {
		return 0, fmt.Errorf("store: a previous manifest append failed and may have left partial bytes; reopen the store to recover before appending")
	}
	sketches = append([]*sketch.BottomK(nil), sketches...)
	epoch := s.epoch + 1
	var buf bytes.Buffer
	// The parallel encoder is byte-identical to the serial one (the sketch
	// tests pin this), so segment bytes and manifest CRCs are independent of
	// the core count that persisted them.
	crc, err := sketch.EncodeSegmentParallel(&buf, s.meta, sketches)
	if err != nil {
		return 0, fmt.Errorf("store: encoding epoch %d: %w", epoch, err)
	}
	name := segmentName("epoch", epoch)
	if err := s.writeFileDurably(name, buf.Bytes()); err != nil {
		return 0, err
	}
	line := manifestLine('E', epoch, name, buf.Len(), crc, fingerprints(sketches))
	if out := s.faults.Act(FaultManifestAppend); out.Err != nil {
		// Simulate a failed append; with "torn" it is a short write that
		// stranded half the line in the file, exactly what a real partial
		// WriteString leaves behind.
		if out.Torn {
			_, _ = s.manifest.WriteString(string(faults.Tear([]byte(line))))
			_ = s.manifest.Sync()
		}
		s.broken = true
		return 0, fmt.Errorf("store: appending manifest: %w", out.Err)
	}
	if _, err := s.manifest.WriteString(line); err != nil {
		// The file may now hold a partial line; a further append would
		// concatenate onto the junk and corrupt the record that follows.
		// Refuse until a reopen truncates the manifest to its last good
		// offset.
		s.broken = true
		return 0, fmt.Errorf("store: appending manifest: %w", err)
	}
	if out := s.faults.Act(FaultManifestFsync); out.Err != nil {
		s.broken = true
		return 0, fmt.Errorf("store: syncing manifest: %w", out.Err)
	}
	syncStart := time.Now()
	if err := s.manifest.Sync(); err != nil {
		s.broken = true
		return 0, fmt.Errorf("store: syncing manifest: %w", err)
	}
	s.manifestFsyncHist.Record(time.Since(syncStart))
	// Acknowledged. Everything below only maintains in-memory state and
	// bounds disk usage. The cumulative memo is invalidated, not updated:
	// the serving layer maintains its own cumulative merge, so eagerly
	// re-merging here would duplicate that work on every freeze.
	s.epoch = epoch
	s.bytes += int64(buf.Len())
	s.retained = append(s.retained, storedEpoch{
		EpochRecord: EpochRecord{Epoch: epoch, Sketches: sketches},
		size:        buf.Len(),
		crc:         crc,
	})
	s.cum = nil
	if len(s.retained) > s.retain {
		if err := s.compact(); err != nil {
			return epoch, &CompactionError{Err: err}
		}
	}
	return epoch, nil
}

// fingerprints lists the per-assignment configuration fingerprints.
func fingerprints(sketches []*sketch.BottomK) []uint64 {
	fps := make([]uint64, len(sketches))
	for i, sk := range sketches {
		fps[i] = sk.Fingerprint()
	}
	return fps
}

// compact merges the epochs that fell out of the retention ring into the
// cumulative segment, rewrites the manifest atomically, and deletes the
// expired segment files. Caller holds s.mu.
func (s *Store) compact() error {
	drop := len(s.retained) - s.retain
	expired, kept := s.retained[:drop], s.retained[drop:]
	through := expired[drop-1].Epoch

	parts := make([][]*sketch.BottomK, s.assignments)
	for b := range parts {
		if s.base != nil {
			parts[b] = append(parts[b], s.base[b])
		}
		for _, rec := range expired {
			parts[b] = append(parts[b], rec.Sketches[b])
		}
	}
	base, err := mergeColumns(parts)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	crc, err := sketch.EncodeSegmentParallel(&buf, s.meta, base)
	if err != nil {
		return fmt.Errorf("store: encoding cumulative segment: %w", err)
	}
	name := segmentName("cum", through)
	if err := s.writeFileDurably(name, buf.Bytes()); err != nil {
		return err
	}

	// Rewrite the manifest: header, the new C record, the kept E records.
	// The kept lines reuse the sizes and checksums recorded when each
	// epoch was appended (or recovered) — no segment is re-read, and a
	// file that rotted since its append cannot launder its own corrupt
	// trailer into the fresh manifest.
	var mb strings.Builder
	fmt.Fprintf(&mb, "%s%d\n", manifestHeaderPrefix, s.assignments)
	mb.WriteString(manifestLine('C', through, name, buf.Len(), crc, fingerprints(base)))
	for _, rec := range kept {
		mb.WriteString(manifestLine('E', rec.Epoch, segmentName("epoch", rec.Epoch), rec.size, rec.crc, fingerprints(rec.Sketches)))
	}
	if err := s.rewriteManifest(mb.String()); err != nil {
		return err
	}

	oldThrough, oldBase := s.through, s.base
	s.through, s.base = through, base
	s.retained = append([]storedEpoch(nil), kept...)

	// The expired epochs and the previous cumulative segment are no longer
	// referenced; deletion is best-effort (a leftover is garbage-collected
	// on the next writable open).
	for _, rec := range expired {
		s.removeSegment(segmentName("epoch", rec.Epoch))
	}
	if oldBase != nil {
		s.removeSegment(segmentName("cum", oldThrough))
	}
	s.bytes += int64(buf.Len())
	s.log.Debug("compacted epochs into cumulative segment",
		"through", through, "retained", len(kept), "disk_bytes", s.bytes)
	return nil
}

// rewriteManifest atomically replaces the manifest (write-tmp → fsync →
// rename → fsync(dir)) and reopens it for appending. Caller holds s.mu.
func (s *Store) rewriteManifest(content string) error {
	if err := s.writeFileDurably(manifestName, []byte(content)); err != nil {
		return err
	}
	if err := s.manifest.Close(); err != nil {
		return fmt.Errorf("store: closing old manifest: %w", err)
	}
	m, err := os.OpenFile(s.path(manifestName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopening manifest: %w", err)
	}
	s.manifest = m
	return nil
}

// removeSegment deletes a segment file, adjusting the byte accounting.
func (s *Store) removeSegment(name string) {
	if st, err := os.Stat(s.path(name)); err == nil {
		if os.Remove(s.path(name)) == nil {
			s.bytes -= st.Size()
		}
	}
}

// writeFileDurably writes name under the store directory via write-tmp →
// fsync → rename → fsync(dir): after it returns, the file is durable under
// its final name; a crash mid-call leaves at worst a *.tmp orphan.
func (s *Store) writeFileDurably(name string, data []byte) error {
	start := time.Now()
	isSegment := strings.HasSuffix(name, ".seg")
	if isSegment {
		out := s.faults.Act(FaultSegmentWrite)
		if out.Err != nil {
			return fmt.Errorf("store: writing %s: %w", name, out.Err)
		}
		if out.Torn {
			// A torn write that lies about success: the durable file holds
			// half the bytes the manifest will acknowledge.
			data = faults.Tear(data)
		}
	}
	tmp, err := os.CreateTemp(s.dir, name+".tmp-")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing %s: %w", name, err)
	}
	if isSegment {
		if out := s.faults.Act(FaultSegmentFsync); out.Err != nil {
			tmp.Close()
			return fmt.Errorf("store: syncing %s: %w", name, out.Err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing %s: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), s.path(name)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	if isSegment {
		s.segWriteHist.Record(time.Since(start))
	}
	return nil
}

// syncDir fsyncs the store directory, making renames durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing directory: %w", err)
	}
	return nil
}

func (s *Store) path(name string) string { return filepath.Join(s.dir, name) }

func segmentName(kind string, n int) string { return fmt.Sprintf("%s-%06d.seg", kind, n) }

// manifestLine formats one manifest record, closed by the CRC-32C of the
// preceding bytes of the line.
func manifestLine(kind byte, n int, file string, size int, crc uint32, fps []uint64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%c %d %s %d %08x fps=", kind, n, file, size, crc)
	for i, fp := range fps {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%016x", fp)
	}
	body := sb.String()
	return fmt.Sprintf("%s %08x\n", body, crc32.Checksum([]byte(body), castagnoli))
}

// manifestRecord is one parsed manifest line.
type manifestRecord struct {
	kind byte // 'E' or 'C'
	n    int  // epoch ('E') or compacted-through epoch ('C')
	file string
	size int
	crc  uint32
	fps  []uint64
}

// parseManifestLine inverts manifestLine, verifying the line checksum.
func parseManifestLine(line string) (manifestRecord, error) {
	var rec manifestRecord
	fields := strings.Fields(line)
	if len(fields) != 7 {
		return rec, fmt.Errorf("want 7 fields, have %d", len(fields))
	}
	lineCRC, err := strconv.ParseUint(fields[6], 16, 32)
	if err != nil {
		return rec, fmt.Errorf("bad line checksum %q", fields[6])
	}
	body := strings.TrimRight(line[:strings.LastIndex(line, fields[6])], " ")
	if crc32.Checksum([]byte(body), castagnoli) != uint32(lineCRC) {
		return rec, fmt.Errorf("line checksum mismatch")
	}
	if len(fields[0]) != 1 || (fields[0][0] != 'E' && fields[0][0] != 'C') {
		return rec, fmt.Errorf("unknown record kind %q", fields[0])
	}
	rec.kind = fields[0][0]
	if rec.n, err = strconv.Atoi(fields[1]); err != nil || rec.n < 1 {
		return rec, fmt.Errorf("bad epoch %q", fields[1])
	}
	rec.file = fields[2]
	if rec.file != filepath.Base(rec.file) {
		return rec, fmt.Errorf("segment name %q escapes the store directory", rec.file)
	}
	if rec.size, err = strconv.Atoi(fields[3]); err != nil || rec.size < 0 {
		return rec, fmt.Errorf("bad size %q", fields[3])
	}
	crc, err := strconv.ParseUint(fields[4], 16, 32)
	if err != nil {
		return rec, fmt.Errorf("bad segment checksum %q", fields[4])
	}
	rec.crc = uint32(crc)
	fpsField, ok := strings.CutPrefix(fields[5], "fps=")
	if !ok {
		return rec, fmt.Errorf("missing fps field")
	}
	for _, part := range strings.Split(fpsField, ",") {
		fp, err := strconv.ParseUint(part, 16, 64)
		if err != nil {
			return rec, fmt.Errorf("bad fingerprint %q", part)
		}
		rec.fps = append(rec.fps, fp)
	}
	return rec, nil
}

// recover replays the manifest and loads every referenced segment. Caller
// is Open; no lock needed yet.
func (s *Store) recover() error {
	mpath := s.path(manifestName)
	data, err := os.ReadFile(mpath)
	if errors.Is(err, os.ErrNotExist) {
		if !s.writable {
			return fmt.Errorf("store: %s is not a store (no %s)", s.dir, manifestName)
		}
		// A directory holding segment files but no manifest is NOT a fresh
		// store: it is a damaged one (or a mistyped -data-dir aimed at the
		// wrong place). Initializing here would garbage-collect every
		// segment — the durability layer deleting the data it protects.
		if segs, _ := filepath.Glob(s.path("*.seg")); len(segs) > 0 {
			return &CorruptError{Path: mpath, Detail: fmt.Sprintf(
				"manifest missing but %d segment file(s) present (e.g. %s); refusing to initialize over them — restore the manifest or point -data-dir elsewhere",
				len(segs), filepath.Base(segs[0]))}
		}
		// Fresh store: write the header atomically, so a torn header can
		// never be observed.
		header := fmt.Sprintf("%s%d\n", manifestHeaderPrefix, s.assignments)
		return s.writeFileDurably(manifestName, []byte(header))
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}

	// Only an *unterminated* final line can be a torn append (every record
	// is written as a single "line\n"; a crash mid-append cuts it before
	// the newline). A newline-terminated line that fails its checksum is
	// acknowledged state hit by bit rot — corruption, never tolerated.
	content := string(data)
	torn := ""
	if i := strings.LastIndexByte(content, '\n'); i < 0 {
		torn, content = content, ""
	} else if i != len(content)-1 {
		torn, content = content[i+1:], content[:i+1]
	}
	lines := strings.Split(content, "\n")
	lines = lines[:len(lines)-1] // drop the empty element after the final "\n"
	if len(lines) == 0 {
		if torn != "" {
			return &CorruptError{Path: mpath, Detail: "manifest holds no complete header"}
		}
		return &CorruptError{Path: mpath, Detail: "empty manifest"}
	}
	assignments, err := parseHeader(lines[0])
	if err != nil {
		return &CorruptError{Path: mpath, Detail: err.Error()}
	}
	if s.writable && assignments != s.assignments {
		return &MismatchError{Detail: fmt.Sprintf("store holds %d assignments, configured for %d", assignments, s.assignments)}
	}
	s.assignments = assignments

	records := make([]manifestRecord, 0, len(lines)-1)
	for i, line := range lines[1:] {
		rec, err := parseManifestLine(line)
		if err != nil {
			return &CorruptError{Path: mpath, Detail: fmt.Sprintf("record %d: %v", i+1, err), Err: err}
		}
		records = append(records, rec)
	}
	if torn != "" && s.writable {
		// Heal the torn append: truncate to the acknowledged prefix so the
		// next append starts on a fresh line instead of concatenating onto
		// the partial bytes.
		if err := os.Truncate(mpath, int64(len(content))); err != nil {
			return fmt.Errorf("store: truncating torn manifest tail: %w", err)
		}
	}

	for _, rec := range records {
		sketches, err := s.loadSegment(rec)
		if err != nil {
			return err
		}
		s.bytes += int64(rec.size)
		switch rec.kind {
		case 'C':
			if rec.n < s.epoch {
				return &CorruptError{Path: mpath, Detail: fmt.Sprintf("compaction through %d behind epoch %d", rec.n, s.epoch)}
			}
			s.through, s.base = rec.n, sketches
			if rec.n > s.epoch {
				s.epoch = rec.n
			}
			s.retained = nil
		case 'E':
			if rec.n != s.epoch+1 {
				return &CorruptError{Path: mpath, Detail: fmt.Sprintf("epoch %d follows epoch %d (acknowledged history has a gap)", rec.n, s.epoch)}
			}
			s.epoch = rec.n
			s.retained = append(s.retained, storedEpoch{
				EpochRecord: EpochRecord{Epoch: rec.n, Sketches: sketches},
				size:        rec.size,
				crc:         rec.crc,
			})
		}
	}

	// Cumulative = base + retained, exactly as the epochs were merged live.
	if s.epoch > 0 {
		if s.cum, err = mergeColumns(s.allColumns()); err != nil {
			return err
		}
	}
	return nil
}

// parseHeader validates the manifest header and extracts the assignment
// count.
func parseHeader(line string) (int, error) {
	rest, ok := strings.CutPrefix(line, manifestHeaderPrefix)
	if !ok {
		return 0, fmt.Errorf("bad header %q", line)
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad assignment count %q", rest)
	}
	return n, nil
}

// loadSegment reads, verifies, and decodes one referenced segment file.
// Every failure is acknowledged-state corruption: a typed error, never a
// partial result.
func (s *Store) loadSegment(rec manifestRecord) ([]*sketch.BottomK, error) {
	path := s.path(rec.file)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, &CorruptError{Path: path, Detail: "acknowledged segment unreadable", Err: err}
	}
	if len(data) != rec.size {
		return nil, &CorruptError{Path: path, Detail: fmt.Sprintf("%d bytes, manifest records %d", len(data), rec.size)}
	}
	if crc, ok := sketch.SegmentCRC(data); !ok || crc != rec.crc {
		return nil, &CorruptError{Path: path, Detail: fmt.Sprintf("segment checksum %08x, manifest records %08x", crc, rec.crc)}
	}
	decoded, err := sketch.DecodeSegment(data)
	if err != nil {
		return nil, &CorruptError{Path: path, Detail: "segment failed validation", Err: err}
	}
	if len(decoded) != s.assignments || len(rec.fps) != s.assignments {
		return nil, &CorruptError{Path: path, Detail: fmt.Sprintf("%d sketches for %d assignments", len(decoded), s.assignments)}
	}
	sketches := make([]*sketch.BottomK, s.assignments)
	for b, d := range decoded {
		if d.BottomK == nil {
			return nil, &CorruptError{Path: path, Detail: fmt.Sprintf("sketch %d is not a bottom-k sketch", b)}
		}
		if d.Meta.Assignment != b {
			return nil, &CorruptError{Path: path, Detail: fmt.Sprintf("sketch %d describes assignment %d", b, d.Meta.Assignment)}
		}
		if d.BottomK.Fingerprint() != rec.fps[b] {
			return nil, &CorruptError{Path: path, Detail: fmt.Sprintf("sketch %d fingerprint %016x, manifest records %016x", b, d.BottomK.Fingerprint(), rec.fps[b])}
		}
		if s.writable {
			if want := s.sample.Assigner().Fingerprint(b, s.sample.K); d.BottomK.Fingerprint() != want {
				return nil, &MismatchError{Detail: fmt.Sprintf(
					"%s sketch %d was built under %v/%v/seed=%d/k=%d (fingerprint %016x), store opened for %v/%v/seed=%d/k=%d (fingerprint %016x)",
					rec.file, b, d.Meta.Family, d.Meta.Mode, d.Meta.Seed, d.BottomK.K(),
					d.BottomK.Fingerprint(), s.sample.Family, s.sample.Mode, s.sample.Seed, s.sample.K, want)}
			}
		}
		sketches[b] = d.BottomK
	}
	if s.meta == nil {
		metas := make([]sketch.WireMeta, len(decoded))
		for b, d := range decoded {
			metas[b] = d.Meta
		}
		s.meta = metas
	}
	return sketches, nil
}

// collectGarbage removes *.tmp orphans and segment files no manifest
// record references (crash leftovers from between a segment rename and its
// manifest append, or from an interrupted compaction). Writable opens
// only; caller is Open.
func (s *Store) collectGarbage() {
	referenced := map[string]bool{}
	if s.base != nil {
		referenced[segmentName("cum", s.through)] = true
	}
	for _, rec := range s.retained {
		referenced[segmentName("epoch", rec.Epoch)] = true
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if name == manifestName || referenced[name] {
			continue
		}
		if strings.Contains(name, ".tmp-") || strings.HasSuffix(name, ".seg") {
			os.Remove(s.path(name))
		}
	}
}

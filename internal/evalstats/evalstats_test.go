package evalstats

import (
	"math"
	"math/rand"
	"testing"

	"coordsample/internal/core"
	"coordsample/internal/dataset"
	"coordsample/internal/estimate"
	"coordsample/internal/rank"
)

func synthData(n int, numAsg int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, numAsg)
	for b := range names {
		names[b] = "w" + itoa(b)
	}
	bld := dataset.NewBuilder(names...)
	for i := 0; i < n; i++ {
		key := "key-" + itoa(i)
		base := math.Exp(rng.NormFloat64())
		for b := 0; b < numAsg; b++ {
			if rng.Float64() < 0.25 {
				continue
			}
			bld.Add(b, key, base*(0.5+rng.Float64()))
		}
	}
	return bld.Build()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func TestTruthOf(t *testing.T) {
	ds := synthData(100, 2, 1)
	truth := TruthOf(ds, estimate.MaxOf())
	if got := truth.SumF; math.Abs(got-ds.SumMax(nil, nil)) > 1e-9 {
		t.Fatalf("SumF = %v, want %v", got, ds.SumMax(nil, nil))
	}
	var f2 float64
	vec := make([]float64, 2)
	for i := 0; i < ds.NumKeys(); i++ {
		ds.WeightVectorInto(vec, i)
		v := dataset.MaxR(vec, nil)
		f2 += v * v
	}
	if math.Abs(truth.SumF2-f2) > 1e-6 {
		t.Fatalf("SumF2 = %v, want %v", truth.SumF2, f2)
	}
}

func TestSquaredErrorBruteForce(t *testing.T) {
	ds := synthData(50, 2, 2)
	truth := TruthOf(ds, estimate.MinOf())
	cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 7, K: 10}
	aw := core.SummarizeDispersed(cfg, ds).MinLSet(nil)

	// Brute force over every key of the dataset.
	want := 0.0
	vec := make([]float64, 2)
	for i := 0; i < ds.NumKeys(); i++ {
		ds.WeightVectorInto(vec, i)
		f := dataset.MinR(vec, nil)
		d := aw.AdjustedWeight(ds.Key(i)) - f
		want += d * d
	}
	if got := truth.SquaredError(aw); math.Abs(got-want) > 1e-6*want+1e-9 {
		t.Fatalf("SquaredError = %v, want %v", got, want)
	}
}

func TestMeasureConvergesToAnalyticVariance(t *testing.T) {
	// For a single key sampled with IPPS Poisson-like inclusion p, the RC
	// variance in a fixed conditioning subspace is f²(1/p − 1). Use a 2-key
	// dataset with k=1 where the math is tractable... instead, validate
	// against the analytic bound ΣV ≤ w(I)²/(k−2) for single-assignment RC
	// estimators and check positivity and scaling in k.
	ds := synthData(300, 1, 3)
	truth := TruthOf(ds, estimate.SingleOf(0))
	measure := func(k int) Measurement {
		return Measure(truth, 60, 1000, func(seed uint64) estimate.AWSummary {
			cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: seed, K: k}
			return core.SummarizeDispersed(cfg, ds).Single(0)
		})
	}
	m8 := measure(8)
	m64 := measure(64)
	bound8 := truth.SumF * truth.SumF / (8 - 2)
	if m8.SigmaV <= 0 || m8.SigmaV > bound8 {
		t.Fatalf("ΣV(k=8) = %v outside (0, %v]", m8.SigmaV, bound8)
	}
	if m64.SigmaV >= m8.SigmaV {
		t.Fatalf("ΣV should shrink with k: k=8 %v, k=64 %v", m8.SigmaV, m64.SigmaV)
	}
	if m8.NSigmaV != m8.SigmaV/(truth.SumF*truth.SumF) {
		t.Fatal("NSigmaV normalization wrong")
	}
	if m8.Runs != 60 || m8.MeanSummaryKeys <= 0 {
		t.Fatal("bookkeeping fields wrong")
	}
}

func TestMeasureExactEstimatorHasZeroVariance(t *testing.T) {
	ds := synthData(40, 2, 4)
	truth := TruthOf(ds, estimate.MaxOf())
	m := Measure(truth, 10, 55, func(seed uint64) estimate.AWSummary {
		cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: seed, K: 100}
		return core.SummarizeDispersed(cfg, ds).Max(nil)
	})
	if m.SigmaV > 1e-12*truth.SumF2 {
		t.Fatalf("full-coverage estimator should have ~0 variance, got %v", m.SigmaV)
	}
}

func TestSharingIndexBounds(t *testing.T) {
	if got := SharingIndex(30, 10, 3); got != 1 {
		t.Fatalf("SharingIndex = %v, want 1", got)
	}
	if got := SharingIndex(10, 10, 3); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("SharingIndex = %v, want 1/3", got)
	}
}

func TestMeanSummarySize(t *testing.T) {
	ds := synthData(200, 3, 5)
	mean := MeanSummarySize(20, 99, func(seed uint64) int {
		cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: seed, K: 10}
		return core.SummarizeColocated(cfg, ds).DistinctKeys()
	})
	if mean < 10 || mean > 30 {
		t.Fatalf("mean summary size %v outside [k, |W|k]", mean)
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(11, 10) != 0.1 {
		t.Fatal("RelErr basic")
	}
	if RelErr(0, 0) != 0 {
		t.Fatal("RelErr 0/0")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Fatal("RelErr x/0")
	}
}

func TestZeroCovarianceConjecture(t *testing.T) {
	// Conjecture 8.1: adjusted weights of different keys have zero
	// covariance. Empirically, normalized covariances across many runs must
	// be statistically indistinguishable from zero for sampled key pairs.
	ds := synthData(60, 2, 6)
	truth := TruthOf(ds, estimate.MinOf())
	// Pick the two heaviest-min keys so both are sampled often enough for a
	// meaningful covariance estimate.
	var k1, k2 string
	var f1, f2 float64
	for key, f := range truth.F {
		switch {
		case f > f1:
			k2, f2 = k1, f1
			k1, f1 = key, f
		case f > f2:
			k2, f2 = key, f
		}
	}
	if f1 == 0 || f2 == 0 {
		t.Fatal("dataset has no keys with positive min")
	}
	var cov Covariance
	var v1, v2 Covariance // reuse as variance accumulators
	const runs = 6000
	for r := 0; r < runs; r++ {
		cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: uint64(r) + 1, K: 12}
		aw := core.SummarizeDispersed(cfg, ds).MinLSet(nil)
		x, y := aw.AdjustedWeight(k1), aw.AdjustedWeight(k2)
		cov.Add(x, y)
		v1.Add(x, x)
		v2.Add(y, y)
	}
	sd1 := math.Sqrt(v1.Value())
	sd2 := math.Sqrt(v2.Value())
	if sd1 == 0 || sd2 == 0 {
		t.Skip("degenerate key variance")
	}
	corr := cov.Value() / (sd1 * sd2)
	// Correlation standard error ~ 1/sqrt(runs) ≈ 0.013; allow 5σ.
	if math.Abs(corr) > 0.065 {
		t.Fatalf("empirical correlation %v too far from zero (Conjecture 8.1)", corr)
	}
	if cov.N() != runs {
		t.Fatal("covariance bookkeeping")
	}
}

func TestMeasureValidation(t *testing.T) {
	assertPanics(t, func() { Measure(Truth{}, 0, 1, nil) })
	assertPanics(t, func() { MeanSummarySize(0, 1, nil) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

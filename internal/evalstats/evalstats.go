// Package evalstats implements the evaluation metrics of Section 9: the sum
// of per-key variances ΣV[a] = Σ_i VAR[a(i)] and its normalized form
// nΣV = ΣV/(Σ_i f(i))², approximated by averaging squared errors over
// repeated runs of the sampling algorithm, plus the sharing index and
// combined-sample-size accounting used by the colocated comparisons.
package evalstats

import (
	"fmt"
	"math"

	"coordsample/internal/dataset"
	"coordsample/internal/estimate"
)

// Truth holds the exact per-key values of an aggregate f over a dataset,
// with the precomputed sums needed to evaluate squared error in time
// proportional to the summary rather than the data.
type Truth struct {
	F     map[string]float64 // per-key f(i), positive entries only
	SumF  float64            // Σ_i f(i)
	SumF2 float64            // Σ_i f(i)²
}

// TruthOf evaluates the aggregate f exactly on every key of the dataset.
func TruthOf(ds *dataset.Dataset, f estimate.AggFunc) Truth {
	t := Truth{F: make(map[string]float64, ds.NumKeys())}
	vec := make([]float64, ds.NumAssignments())
	for i := 0; i < ds.NumKeys(); i++ {
		ds.WeightVectorInto(vec, i)
		v := f.Eval(vec)
		if v > 0 {
			t.F[ds.Key(i)] = v
		}
		t.SumF += v
		t.SumF2 += v * v
	}
	return t
}

// SquaredError returns Σ_i (a(i) − f(i))² for one AW-summary: the per-run
// sample whose average over runs estimates ΣV[a]. Computed as
// SumF2 + Σ_{i∈S}[(a(i)−f(i))² − f(i)²], touching only summarized keys.
func (t Truth) SquaredError(aw estimate.AWSummary) float64 {
	total := t.SumF2
	for _, key := range aw.Keys() {
		a := aw.AdjustedWeight(key)
		f := t.F[key]
		d := a - f
		total += d*d - f*f
	}
	return total
}

// Measurement aggregates repeated-run statistics for one estimator.
type Measurement struct {
	// SigmaV approximates ΣV[a] = Σ_i VAR[a(i)].
	SigmaV float64
	// NSigmaV is SigmaV normalized by (Σ_i f(i))².
	NSigmaV float64
	// MeanSummaryKeys is the mean number of keys with positive adjusted
	// weight per run.
	MeanSummaryKeys float64
	// Runs is the number of sampling repetitions averaged.
	Runs int
}

// Measure approximates ΣV[a] for an estimator by averaging squared error
// over runs independent sampling repetitions (the paper uses 25–200). The
// est callback must build a fresh summary under the given hash seed.
func Measure(truth Truth, runs int, baseSeed uint64, est func(seed uint64) estimate.AWSummary) Measurement {
	if runs < 1 {
		panic(fmt.Sprintf("evalstats: invalid run count %d", runs))
	}
	var total float64
	var keys int
	for r := 0; r < runs; r++ {
		aw := est(baseSeed + uint64(r)*0x9e3779b97f4a7c15)
		total += truth.SquaredError(aw)
		keys += aw.Len()
	}
	m := Measurement{
		SigmaV:          total / float64(runs),
		MeanSummaryKeys: float64(keys) / float64(runs),
		Runs:            runs,
	}
	if truth.SumF > 0 {
		m.NSigmaV = m.SigmaV / (truth.SumF * truth.SumF)
	}
	return m
}

// SharingIndex is |S|/(k·|W|): the ratio of distinct keys in the combined
// summary to the total embedded-sample budget (Section 9.3). It lies in
// [1/|W|, 1]; lower is better (more sharing).
func SharingIndex(distinctKeys, k, numAssignments int) float64 {
	return float64(distinctKeys) / (float64(k) * float64(numAssignments))
}

// MeanSummarySize averages a summary-size callback over runs repetitions;
// used for the sharing index and the variance-versus-storage tradeoffs
// (Figures 12–17).
func MeanSummarySize(runs int, baseSeed uint64, size func(seed uint64) int) float64 {
	if runs < 1 {
		panic(fmt.Sprintf("evalstats: invalid run count %d", runs))
	}
	total := 0
	for r := 0; r < runs; r++ {
		total += size(baseSeed + uint64(r)*0x9e3779b97f4a7c15)
	}
	return float64(total) / float64(runs)
}

// RelErr is a convenience for reporting: |got−want|/want (0 when want is 0
// and got is 0, +Inf when only want is 0).
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// Covariance accumulates the empirical covariance of two keys' adjusted
// weights across runs — used to probe the paper's zero-covariance
// conjecture (Conjecture 8.1).
type Covariance struct {
	n           float64
	sx, sy, sxy float64
}

// Add records one run's adjusted weights for the two keys.
func (c *Covariance) Add(x, y float64) {
	c.n++
	c.sx += x
	c.sy += y
	c.sxy += x * y
}

// Value returns the empirical covariance (0 for fewer than 2 samples).
func (c *Covariance) Value() float64 {
	if c.n < 2 {
		return 0
	}
	return c.sxy/c.n - (c.sx/c.n)*(c.sy/c.n)
}

// N returns the number of recorded runs.
func (c *Covariance) N() int { return int(c.n) }

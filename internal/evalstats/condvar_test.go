package evalstats

import (
	"math"
	"testing"

	"coordsample/internal/core"
	"coordsample/internal/estimate"
	"coordsample/internal/rank"
)

// TestCondVarMatchesEmpirical is the keystone consistency check: the
// conditional-variance measurement and the empirical squared-error
// measurement estimate the same quantity ΣV[a], so on a workload where both
// converge they must agree. This cross-validates the inclusion-probability
// formulas against realized sampling behaviour.
func TestCondVarMatchesEmpirical(t *testing.T) {
	ds := synthData(120, 2, 41)
	const k = 25
	const runs = 1500

	// Empirical ΣV of the coordinated estimators.
	truthMax := TruthOf(ds, estimate.MaxOf())
	truthMin := TruthOf(ds, estimate.MinOf())
	truthL1 := TruthOf(ds, estimate.RangeOf())
	var empMax, empMin, empL1, cvMax, cvMin, cvL1 float64
	for run := 0; run < runs; run++ {
		cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: uint64(run) + 1, K: k}
		d := core.SummarizeDispersed(cfg, ds)
		maxAW := d.Max(nil)
		minAW := d.MinLSet(nil)
		empMax += truthMax.SquaredError(maxAW)
		empMin += truthMin.SquaredError(minAW)
		empL1 += truthL1.SquaredError(estimate.Sub(maxAW, minAW))
		cv := CondVarDispersed(ds, d)
		cvMax += cv.Max
		cvMin += cv.MinL
		cvL1 += cv.L1L
	}
	n := float64(runs)
	check := func(name string, emp, cv float64) {
		t.Helper()
		// The empirical side is noisy; 12% agreement at 1500 runs is ample
		// to catch a wrong probability formula (those are off by factors).
		if math.Abs(emp-cv) > 0.12*cv {
			t.Fatalf("%s: empirical ΣV %v vs conditional %v", name, emp/n, cv/n)
		}
	}
	check("max", empMax, cvMax)
	check("min-l", empMin, cvMin)
	check("L1-l", empL1, cvL1)
}

func check(t *testing.T, name string, emp, cv float64) {
	t.Helper()
	if math.Abs(emp-cv) > 0.15*cv {
		t.Fatalf("%s: empirical ΣV %v vs conditional %v", name, emp, cv)
	}
}

func TestCondVarIndependentMinMatchesEmpirical(t *testing.T) {
	// With |R| = 2 and a healthy k, the independent min estimator's errors
	// are realizable, so the two measurements must agree there too.
	ds := synthData(100, 2, 43)
	const k = 30
	const runs = 2500
	truthMin := TruthOf(ds, estimate.MinOf())
	var emp, cv float64
	for run := 0; run < runs; run++ {
		cfg := core.Config{Family: rank.IPPS, Mode: rank.Independent, Seed: uint64(run) + 1, K: k}
		d := core.SummarizeDispersed(cfg, ds)
		emp += truthMin.SquaredError(d.MinLSet(nil))
		cv += CondVarIndependentMin(ds, d)
	}
	check(t, "ind-min", emp, cv)
}

func TestCondVarColocatedMatchesEmpirical(t *testing.T) {
	ds := synthData(100, 3, 47)
	const k = 20
	const runs = 1500
	truth := TruthOf(ds, estimate.SingleOf(1))
	var empI, empP, cvI, cvP float64
	for run := 0; run < runs; run++ {
		cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: uint64(run) + 1, K: k}
		c := core.SummarizeColocated(cfg, ds)
		empI += truth.SquaredError(c.Inclusive(estimate.SingleOf(1)))
		empP += truth.SquaredError(c.Plain(1))
		i, p := CondVarColocated(ds, c, 1)
		cvI += i
		cvP += p
	}
	check(t, "inclusive", empI, cvI)
	check(t, "plain", empP, cvP)
}

func TestCondVarUniformMinMatchesEmpirical(t *testing.T) {
	ds := synthData(90, 2, 53)
	const k = 25
	const runs = 2500
	truthMin := TruthOf(ds, estimate.MinOf())
	var emp, cv float64
	for run := 0; run < runs; run++ {
		cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: uint64(run) + 1, K: k}
		sketches := core.SummarizeUniformBaseline(cfg, ds)
		emp += truthMin.SquaredError(estimate.UniformMin(rank.IPPS, sketches, nil))
		cv += CondVarUniformMin(ds, rank.IPPS, sketches)
	}
	check(t, "uniform-min", emp, cv)
}

func TestCondVarZeroWhenExact(t *testing.T) {
	ds := synthData(30, 2, 59)
	cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 3, K: 64}
	d := core.SummarizeDispersed(cfg, ds)
	cv := CondVarDispersed(ds, d)
	if cv.Max != 0 || cv.MinL != 0 || cv.L1L != 0 {
		t.Fatalf("full-coverage conditional variance should be zero: %+v", cv)
	}
	if got := CondVarIndependentMin(ds, core.SummarizeDispersed(core.Config{Family: rank.IPPS, Mode: rank.Independent, Seed: 3, K: 64}, ds)); got != 0 {
		t.Fatalf("independent full-coverage variance = %v", got)
	}
}

func TestCondVarOrderings(t *testing.T) {
	// Structural inequalities that hold per realized run: l-set ≤ s-set,
	// coordinated min ≤ independent min, inclusive ≤ plain.
	ds := synthData(150, 3, 61)
	for run := 0; run < 20; run++ {
		cfgC := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: uint64(run) + 1, K: 12}
		dC := core.SummarizeDispersed(cfgC, ds)
		cv := CondVarDispersed(ds, dC)
		if cv.MinL > cv.MinS+1e-9*cv.MinS {
			t.Fatalf("run %d: ΣV[min-l] %v above ΣV[min-s] %v", run, cv.MinL, cv.MinS)
		}
		cfgI := core.Config{Family: rank.IPPS, Mode: rank.Independent, Seed: uint64(run) + 1, K: 12}
		dI := core.SummarizeDispersed(cfgI, ds)
		if ind := CondVarIndependentMin(ds, dI); !math.IsInf(ind, 1) && ind < cv.MinL*0.5 {
			// Different summaries (different thresholds), so only a loose
			// cross-check is valid; systematic reversal would still fail.
			t.Fatalf("run %d: independent min ΣV %v implausibly below coordinated %v", run, ind, cv.MinL)
		}
		c := core.SummarizeColocated(cfgC, ds)
		for b := 0; b < ds.NumAssignments(); b++ {
			incl, plain := CondVarColocated(ds, c, b)
			if incl > plain+1e-9*plain {
				t.Fatalf("run %d b=%d: inclusive ΣV %v above plain %v", run, b, incl, plain)
			}
		}
	}
}

func TestCondVarDispersedRequiresSharedSeed(t *testing.T) {
	ds := synthData(20, 2, 67)
	cfg := core.Config{Family: rank.IPPS, Mode: rank.Independent, Seed: 1, K: 4}
	d := core.SummarizeDispersed(cfg, ds)
	assertPanics(t, func() { CondVarDispersed(ds, d) })
}

func TestVarTermEdges(t *testing.T) {
	if varTerm(0, 0.5) != 0 {
		t.Fatal("zero f")
	}
	if varTerm(2, 1) != 0 {
		t.Fatal("certain inclusion")
	}
	if !math.IsInf(varTerm(2, 0), 1) {
		t.Fatal("impossible inclusion should be +Inf")
	}
	if got := varTerm(2, 0.5); got != 4 {
		t.Fatalf("varTerm = %v, want 4", got)
	}
}

package evalstats

import (
	"math"

	"coordsample/internal/dataset"
	"coordsample/internal/estimate"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// Conditional-variance measurement of ΣV.
//
// Every estimator in the paper is unbiased conditioned on the rank
// assignment of the other keys: on the subspace Ω(i, r^(−i)) the adjusted
// weight is f(i)/p_i times an inclusion indicator, so its conditional
// variance is f(i)²(1/p_i − 1) with p_i computable from the realized
// conditioning thresholds (Eq. 18). By the law of total variance (the
// conditional mean is constant), averaging Σ_i f(i)²(1/p_i − 1) over
// independent rank assignments is an unbiased — and far lower-noise —
// estimate of ΣV[a] than averaging realized squared errors. It is the only
// practical way to measure the independent-sketch estimators, whose
// inclusion probabilities shrink exponentially in |R| (Section 7.2): their
// rare astronomic errors are never realized in a bounded number of runs,
// so empirical squared error is censored from below, while the conditional
// form accounts for them exactly. This is how the orders-of-magnitude
// ratios of Figure 3 become measurable.

// DispersedCondVar holds one realized conditional ΣV for each dispersed
// estimator built on coordinated (shared-seed) sketches.
type DispersedCondVar struct {
	Max, MinL, MinS, L1L, L1S float64
	Singles                   []float64
}

// CondVarDispersed computes the conditional ΣV of the coordinated dispersed
// estimator suite from one realized summary. ds must be the dataset the
// summary was built from (all assignments relevant). Requires shared-seed
// coordination (the L1 decomposition relies on nested selections).
func CondVarDispersed(ds *dataset.Dataset, d *estimate.Dispersed) DispersedCondVar {
	if d.Assigner().Mode != rank.SharedSeed {
		panic("evalstats: CondVarDispersed requires shared-seed coordination")
	}
	family := d.Assigner().Family
	w := ds.NumAssignments()
	out := DispersedCondVar{Singles: make([]float64, w)}
	vec := make([]float64, w)
	taus := make([]float64, w)
	for i := 0; i < ds.NumKeys(); i++ {
		key := ds.Key(i)
		ds.WeightVectorInto(vec, i)
		rMinK := math.Inf(1)
		for b := 0; b < w; b++ {
			taus[b] = d.Sketch(b).RankExcluding(key)
			if taus[b] < rMinK {
				rMinK = taus[b]
			}
		}
		wMax := dataset.MaxR(vec, nil)
		wMin := dataset.MinR(vec, nil)

		// Single-assignment RC estimators: p = F_{w_b}(τ_b).
		for b := 0; b < w; b++ {
			if vec[b] > 0 {
				out.Singles[b] += varTerm(vec[b], family.CDF(vec[b], taus[b]))
			}
		}
		if wMax <= 0 {
			continue
		}
		pMax := family.CDF(wMax, rMinK)
		out.Max += varTerm(wMax, pMax)

		var pMinL, pMinS float64
		if wMin > 0 {
			pMinL = 1.0
			for b := 0; b < w; b++ {
				if q := family.CDF(vec[b], taus[b]); q < pMinL {
					pMinL = q
				}
			}
			pMinS = family.CDF(wMin, rMinK)
			out.MinL += varTerm(wMin, pMinL)
			out.MinS += varTerm(wMin, pMinS)
		}
		// L1 conditional variance (proof of Lemma 8.6, valid for the nested
		// shared-seed selections): VAR = wMax²(1/pMax−1) + wMin²(1/pMin−1)
		// − 2·wMax·wMin·(1/pMax−1).
		out.L1L += l1Var(wMax, wMin, pMax, pMinL)
		out.L1S += l1Var(wMax, wMin, pMax, pMinS)
	}
	return out
}

func varTerm(f, p float64) float64 {
	if f <= 0 {
		return 0
	}
	if p <= 0 {
		return math.Inf(1)
	}
	if p >= 1 {
		return 0
	}
	return f * f * (1/p - 1)
}

func l1Var(wMax, wMin, pMax, pMin float64) float64 {
	if wMax <= 0 {
		return 0
	}
	v := varTerm(wMax, pMax)
	if wMin > 0 {
		v += varTerm(wMin, pMin)
		if pMax > 0 && pMax < 1 {
			v -= 2 * wMax * wMin * (1/pMax - 1)
		}
	}
	return v
}

// CondVarIndependentMin computes the conditional ΣV of the min l-set
// estimator over independent sketches: p_i = Π_b F_{w^b(i)}(τ_b(i)). This
// is the quantity that grows by orders of magnitude with |R| (Figure 3);
// +Inf is returned when a key's probability underflows float64 entirely.
func CondVarIndependentMin(ds *dataset.Dataset, d *estimate.Dispersed) float64 {
	family := d.Assigner().Family
	w := ds.NumAssignments()
	total := 0.0
	vec := make([]float64, w)
	for i := 0; i < ds.NumKeys(); i++ {
		key := ds.Key(i)
		ds.WeightVectorInto(vec, i)
		wMin := dataset.MinR(vec, nil)
		if wMin <= 0 {
			continue
		}
		p := 1.0
		for b := 0; b < w; b++ {
			p *= family.CDF(vec[b], d.Sketch(b).RankExcluding(key))
		}
		total += varTerm(wMin, p)
	}
	return total
}

// CondVarColocated computes the conditional ΣV of the inclusive and plain
// estimators of f(i) = w^(b)(i) on a colocated summary.
func CondVarColocated(ds *dataset.Dataset, c *estimate.Colocated, b int) (inclusive, plain float64) {
	family := c.Assigner().Family
	w := ds.NumAssignments()
	vec := make([]float64, w)
	for i := 0; i < ds.NumKeys(); i++ {
		key := ds.Key(i)
		ds.WeightVectorInto(vec, i)
		f := vec[b]
		if f <= 0 {
			continue
		}
		inclusive += varTerm(f, c.InclusionProbabilityFor(key, vec))
		plain += varTerm(f, family.CDF(f, c.Sketch(b).RankExcluding(key)))
	}
	return inclusive, plain
}

// CondVarUniformMin computes the conditional ΣV of the Section 9.2
// unit-weight baseline min estimator: selection requires presence in all
// sketches with rank below r^(minR)_k(I∖{i}); under unit sampling weights
// and shared seeds, p_i = F_1(r^(minR)_k(I∖{i})) for keys positive
// everywhere.
func CondVarUniformMin(ds *dataset.Dataset, family rank.Family, sketches []*sketch.BottomK) float64 {
	w := ds.NumAssignments()
	total := 0.0
	vec := make([]float64, w)
	for i := 0; i < ds.NumKeys(); i++ {
		key := ds.Key(i)
		ds.WeightVectorInto(vec, i)
		wMin := dataset.MinR(vec, nil)
		if wMin <= 0 {
			continue
		}
		rMinK := math.Inf(1)
		for b := 0; b < w; b++ {
			if t := sketches[b].RankExcluding(key); t < rMinK {
				rMinK = t
			}
		}
		total += varTerm(wMin, family.CDF(1, rMinK))
	}
	return total
}

// Package dataset implements the paper's data model (Section 4): a set of
// keys I and a set W of weight assignments, each mapping keys to nonnegative
// reals. It supplies the per-key multiple-assignment functions the paper
// aggregates — w^(maxR), w^(minR), w^(L1 R), the ℓ-th largest weight — and
// exact ground-truth aggregate sums used to validate estimators.
//
// A Dataset is a colocated, in-memory view: every key's full weight vector is
// available. Dispersed processing is modeled by handing each assignment's
// column to an independently-running sketcher; the Dataset then serves as the
// oracle for evaluation only.
package dataset

import (
	"fmt"
	"math"
	"sort"
)

// Pred selects a subpopulation of keys. A nil Pred selects every key.
// Predicates are attribute-based (they inspect the key identifier only),
// matching the dispersed-model queries in the paper; colocated queries that
// inspect weight vectors use the estimator APIs directly.
type Pred func(key string) bool

// Dataset is an immutable set of keys with one weight per (assignment, key).
type Dataset struct {
	names   []string
	keys    []string
	index   map[string]int
	weights [][]float64 // weights[b][i] = w^(b)(key i)
}

// Builder accumulates (key, assignment, weight) observations into a Dataset.
// Add with the same key and assignment accumulates, which is the aggregation
// step that turns raw events (packets, ratings, trades) into a weighted set.
type Builder struct {
	names   []string
	keys    []string
	index   map[string]int
	weights [][]float64
}

// NewBuilder creates a Builder for the given assignment names. Names must be
// nonempty and unique; they label time periods, locations, or attributes.
func NewBuilder(assignments ...string) *Builder {
	if len(assignments) == 0 {
		panic("dataset: at least one assignment required")
	}
	seen := make(map[string]bool, len(assignments))
	for _, n := range assignments {
		if seen[n] {
			panic(fmt.Sprintf("dataset: duplicate assignment name %q", n))
		}
		seen[n] = true
	}
	return &Builder{
		names:   append([]string(nil), assignments...),
		index:   make(map[string]int),
		weights: make([][]float64, len(assignments)),
	}
}

// Add accumulates weight w for key under assignment b. Negative weights are
// rejected; zero weights are allowed and equivalent to absence.
func (bld *Builder) Add(b int, key string, w float64) {
	if b < 0 || b >= len(bld.names) {
		panic(fmt.Sprintf("dataset: assignment %d out of range", b))
	}
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("dataset: invalid weight %v for key %q", w, key))
	}
	i, ok := bld.index[key]
	if !ok {
		i = len(bld.keys)
		bld.index[key] = i
		bld.keys = append(bld.keys, key)
		for b := range bld.weights {
			bld.weights[b] = append(bld.weights[b], 0)
		}
	}
	bld.weights[b][i] += w
}

// Build freezes the Builder into a Dataset. The Builder must not be used
// afterwards.
func (bld *Builder) Build() *Dataset {
	d := &Dataset{names: bld.names, keys: bld.keys, index: bld.index, weights: bld.weights}
	bld.index = nil
	bld.keys = nil
	bld.weights = nil
	return d
}

// FromColumns constructs a Dataset directly from parallel slices: keys[i] has
// weight columns[b][i] in assignment b. Used by tests and generators that
// already hold columnar data.
func FromColumns(names []string, keys []string, columns [][]float64) *Dataset {
	if len(columns) != len(names) {
		panic("dataset: columns/names length mismatch")
	}
	index := make(map[string]int, len(keys))
	for i, k := range keys {
		if _, dup := index[k]; dup {
			panic(fmt.Sprintf("dataset: duplicate key %q", k))
		}
		index[k] = i
	}
	for b, col := range columns {
		if len(col) != len(keys) {
			panic(fmt.Sprintf("dataset: column %d length mismatch", b))
		}
		for _, w := range col {
			if w < 0 || math.IsNaN(w) {
				panic("dataset: invalid weight")
			}
		}
	}
	return &Dataset{
		names:   append([]string(nil), names...),
		keys:    append([]string(nil), keys...),
		index:   index,
		weights: columns,
	}
}

// NumKeys returns |I|.
func (d *Dataset) NumKeys() int { return len(d.keys) }

// NumAssignments returns |W|.
func (d *Dataset) NumAssignments() int { return len(d.names) }

// AssignmentNames returns the assignment labels in index order.
func (d *Dataset) AssignmentNames() []string { return append([]string(nil), d.names...) }

// Key returns the key at index i.
func (d *Dataset) Key(i int) string { return d.keys[i] }

// KeyIndex returns the index of key and whether it exists.
func (d *Dataset) KeyIndex(key string) (int, bool) {
	i, ok := d.index[key]
	return i, ok
}

// Weight returns w^(b)(key i).
func (d *Dataset) Weight(b, i int) float64 { return d.weights[b][i] }

// WeightByKey returns w^(b)(key), zero if the key is unknown.
func (d *Dataset) WeightByKey(b int, key string) float64 {
	if i, ok := d.index[key]; ok {
		return d.weights[b][i]
	}
	return 0
}

// WeightVector copies the full weight vector of key i into a new slice.
func (d *Dataset) WeightVector(i int) []float64 {
	vec := make([]float64, len(d.weights))
	for b := range d.weights {
		vec[b] = d.weights[b][i]
	}
	return vec
}

// WeightVectorInto fills dst with the weight vector of key i.
func (d *Dataset) WeightVectorInto(dst []float64, i int) {
	if len(dst) != len(d.weights) {
		panic("dataset: dst length mismatch")
	}
	for b := range d.weights {
		dst[b] = d.weights[b][i]
	}
}

// Column returns the weight column of assignment b. The returned slice is
// shared; callers must not modify it.
func (d *Dataset) Column(b int) []float64 { return d.weights[b] }

// Total returns Σ_i w^(b)(i).
func (d *Dataset) Total(b int) float64 {
	s := 0.0
	for _, w := range d.weights[b] {
		s += w
	}
	return s
}

// SupportSize returns the number of keys with positive weight in b.
func (d *Dataset) SupportSize(b int) int {
	n := 0
	for _, w := range d.weights[b] {
		if w > 0 {
			n++
		}
	}
	return n
}

// AllAssignments returns the index list [0, …, |W|−1], the default R.
func (d *Dataset) AllAssignments() []int {
	R := make([]int, len(d.names))
	for b := range R {
		R[b] = b
	}
	return R
}

// --- Per-key multiple-assignment functions (Section 4, Eq. 1 and 2) ---

// MaxR returns w^(maxR)(vec) = max_{b∈R} vec[b]. Nil R means all entries.
func MaxR(vec []float64, R []int) float64 {
	m := 0.0
	if R == nil {
		for _, w := range vec {
			if w > m {
				m = w
			}
		}
		return m
	}
	for _, b := range R {
		if vec[b] > m {
			m = vec[b]
		}
	}
	return m
}

// MinR returns w^(minR)(vec) = min_{b∈R} vec[b]. Nil R means all entries.
func MinR(vec []float64, R []int) float64 {
	first := true
	m := 0.0
	pick := func(w float64) {
		if first || w < m {
			m = w
			first = false
		}
	}
	if R == nil {
		for _, w := range vec {
			pick(w)
		}
	} else {
		for _, b := range R {
			pick(vec[b])
		}
	}
	if first {
		return 0
	}
	return m
}

// RangeR returns w^(L1 R)(vec) = w^(maxR)(vec) − w^(minR)(vec), the per-key
// contribution to the L1 difference (Eq. 2).
func RangeR(vec []float64, R []int) float64 {
	return MaxR(vec, R) - MinR(vec, R)
}

// SumR returns w^(sumR)(vec) = Σ_{b∈R} vec[b], the per-key contribution to
// the total weight across the assignments of R. Nil R means all entries.
// Summation is left to right in R order (deterministic for ground truth).
func SumR(vec []float64, R []int) float64 {
	s := 0.0
	if R == nil {
		for _, w := range vec {
			s += w
		}
		return s
	}
	for _, b := range R {
		s += vec[b]
	}
	return s
}

// LthLargestR returns the ℓ-th largest value of vec over R (1-based, so ℓ=1
// is the maximum and ℓ=|R| the minimum). Panics when ℓ is out of range.
func LthLargestR(vec []float64, R []int, l int) float64 {
	var vals []float64
	if R == nil {
		vals = append(vals, vec...)
	} else {
		vals = make([]float64, 0, len(R))
		for _, b := range R {
			vals = append(vals, vec[b])
		}
	}
	if l < 1 || l > len(vals) {
		panic(fmt.Sprintf("dataset: ℓ=%d out of range for |R|=%d", l, len(vals)))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	return vals[l-1]
}

// --- Exact aggregate sums (ground truth for estimator evaluation) ---

// SumSingle returns Σ_{i: d(i)} w^(b)(i).
func (d *Dataset) SumSingle(b int, pred Pred) float64 {
	s := 0.0
	for i, w := range d.weights[b] {
		if pred == nil || pred(d.keys[i]) {
			s += w
		}
	}
	return s
}

// SumMax returns the max-dominance norm Σ_{i: d(i)} w^(maxR)(i).
func (d *Dataset) SumMax(R []int, pred Pred) float64 {
	return d.sumf(R, pred, MaxR)
}

// SumMin returns the min-dominance norm Σ_{i: d(i)} w^(minR)(i).
func (d *Dataset) SumMin(R []int, pred Pred) float64 {
	return d.sumf(R, pred, MinR)
}

// SumRange returns the L1 difference Σ_{i: d(i)} w^(L1 R)(i).
func (d *Dataset) SumRange(R []int, pred Pred) float64 {
	return d.sumf(R, pred, RangeR)
}

// SumLthLargest returns Σ_{i: d(i)} w^(ℓth-largest R)(i); with |R| odd and
// ℓ=(|R|+1)/2 this is the aggregate of per-key medians.
func (d *Dataset) SumLthLargest(R []int, l int, pred Pred) float64 {
	return d.sumf(R, pred, func(vec []float64, R []int) float64 { return LthLargestR(vec, R, l) })
}

func (d *Dataset) sumf(R []int, pred Pred, f func([]float64, []int) float64) float64 {
	vec := make([]float64, len(d.weights))
	s := 0.0
	for i := range d.keys {
		if pred != nil && !pred(d.keys[i]) {
			continue
		}
		d.WeightVectorInto(vec, i)
		s += f(vec, R)
	}
	return s
}

// WeightedJaccard returns Σ w^(minR) / Σ w^(maxR) over the selected keys, the
// weighted Jaccard similarity of the assignments in R (Section 4). Returns 1
// when both sums are zero (identical empty supports).
func (d *Dataset) WeightedJaccard(R []int, pred Pred) float64 {
	mx := d.SumMax(R, pred)
	mn := d.SumMin(R, pred)
	if mx == 0 {
		return 1
	}
	return mn / mx
}

// DistinctKeys returns the number of keys with positive weight in at least
// one assignment of R (the union support).
func (d *Dataset) DistinctKeys(R []int) int {
	n := 0
	vec := make([]float64, len(d.weights))
	for i := range d.keys {
		d.WeightVectorInto(vec, i)
		if MaxR(vec, R) > 0 {
			n++
		}
	}
	return n
}

// Restrict returns a new Dataset containing only the assignments in R (in
// the given order), dropping keys whose weight is zero everywhere in R.
func (d *Dataset) Restrict(R []int) *Dataset {
	names := make([]string, len(R))
	for j, b := range R {
		names[j] = d.names[b]
	}
	var keys []string
	cols := make([][]float64, len(R))
	for i := range d.keys {
		pos := false
		for _, b := range R {
			if d.weights[b][i] > 0 {
				pos = true
				break
			}
		}
		if !pos {
			continue
		}
		keys = append(keys, d.keys[i])
		for j, b := range R {
			cols[j] = append(cols[j], d.weights[b][i])
		}
	}
	return FromColumns(names, keys, cols)
}

// Uniform returns a copy of the Dataset with every positive weight replaced
// by 1 — the "unweighted" reduction used by the prior-work baseline the paper
// compares against in Section 9.2.
func (d *Dataset) Uniform() *Dataset {
	cols := make([][]float64, len(d.weights))
	for b, col := range d.weights {
		cols[b] = make([]float64, len(col))
		for i, w := range col {
			if w > 0 {
				cols[b][i] = 1
			}
		}
	}
	return FromColumns(d.names, d.keys, cols)
}

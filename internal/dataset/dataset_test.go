package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// fig2Data builds the example data set of Figure 2(A): keys i1..i6 and three
// weight assignments.
func fig2Data() *Dataset {
	keys := []string{"i1", "i2", "i3", "i4", "i5", "i6"}
	cols := [][]float64{
		{15, 0, 10, 5, 10, 10},  // w(1)
		{20, 10, 12, 20, 0, 10}, // w(2)
		{10, 15, 15, 0, 15, 10}, // w(3)
	}
	return FromColumns([]string{"w1", "w2", "w3"}, keys, cols)
}

func TestFigure2ExampleFunctions(t *testing.T) {
	d := fig2Data()
	R12 := []int{0, 1}
	R123 := []int{0, 1, 2}
	R23 := []int{1, 2}

	wantMax12 := []float64{20, 10, 12, 20, 10, 10}
	wantMax123 := []float64{20, 15, 15, 20, 15, 10}
	// Note: Figure 2(A) of the paper lists w^(min{1,2})(i4) = 0, but with
	// w^(1)(i4)=5 and w^(2)(i4)=20 the minimum is 5 — consistent with the
	// figure's own w^(L1{1,2})(i4) = 20−5 = 15. We encode the corrected value.
	wantMin12 := []float64{15, 0, 10, 5, 0, 10}
	wantMin123 := []float64{10, 0, 10, 0, 0, 10}
	wantL112 := []float64{5, 10, 2, 15, 10, 0}
	wantL123 := []float64{10, 5, 3, 20, 15, 0}

	vec := make([]float64, 3)
	for i := 0; i < d.NumKeys(); i++ {
		d.WeightVectorInto(vec, i)
		if got := MaxR(vec, R12); got != wantMax12[i] {
			t.Errorf("max{1,2}(i%d) = %v, want %v", i+1, got, wantMax12[i])
		}
		if got := MaxR(vec, R123); got != wantMax123[i] {
			t.Errorf("max{1,2,3}(i%d) = %v, want %v", i+1, got, wantMax123[i])
		}
		if got := MinR(vec, R12); got != wantMin12[i] {
			t.Errorf("min{1,2}(i%d) = %v, want %v", i+1, got, wantMin12[i])
		}
		if got := MinR(vec, R123); got != wantMin123[i] {
			t.Errorf("min{1,2,3}(i%d) = %v, want %v", i+1, got, wantMin123[i])
		}
		if got := RangeR(vec, R12); got != wantL112[i] {
			t.Errorf("L1{1,2}(i%d) = %v, want %v", i+1, got, wantL112[i])
		}
		if got := RangeR(vec, R23); got != wantL123[i] {
			t.Errorf("L1{2,3}(i%d) = %v, want %v", i+1, got, wantL123[i])
		}
	}
}

func TestSection4ExampleAggregates(t *testing.T) {
	d := fig2Data()
	// "the max dominance norm over even keys … and R = {1,2,3} is
	// 15 + 20 + 10 = 45"
	even := func(key string) bool { return key == "i2" || key == "i4" || key == "i6" }
	if got := d.SumMax([]int{0, 1, 2}, even); got != 45 {
		t.Fatalf("max-dominance over even keys = %v, want 45", got)
	}
	// "the L1 distance between assignments R = {2,3} over keys i1, i2, i3 is
	// 10 + 5 + 3 = 18"
	first3 := func(key string) bool { return key == "i1" || key == "i2" || key == "i3" }
	if got := d.SumRange([]int{1, 2}, first3); got != 18 {
		t.Fatalf("L1{2,3} over i1..i3 = %v, want 18", got)
	}
}

func TestBuilderAccumulates(t *testing.T) {
	b := NewBuilder("bytes", "packets")
	b.Add(0, "flow1", 100)
	b.Add(0, "flow1", 50)
	b.Add(1, "flow1", 2)
	b.Add(0, "flow2", 10)
	d := b.Build()
	if d.NumKeys() != 2 || d.NumAssignments() != 2 {
		t.Fatalf("dims = %d×%d", d.NumKeys(), d.NumAssignments())
	}
	if got := d.WeightByKey(0, "flow1"); got != 150 {
		t.Fatalf("accumulated weight = %v, want 150", got)
	}
	if got := d.WeightByKey(1, "flow2"); got != 0 {
		t.Fatalf("unset weight = %v, want 0", got)
	}
	if got := d.WeightByKey(0, "nosuch"); got != 0 {
		t.Fatalf("unknown key weight = %v, want 0", got)
	}
}

func TestBuilderValidation(t *testing.T) {
	assertPanics(t, func() { NewBuilder() })
	assertPanics(t, func() { NewBuilder("a", "a") })
	b := NewBuilder("a")
	assertPanics(t, func() { b.Add(1, "k", 1) })
	assertPanics(t, func() { b.Add(0, "k", -1) })
	assertPanics(t, func() { b.Add(0, "k", math.NaN()) })
}

func TestFromColumnsValidation(t *testing.T) {
	assertPanics(t, func() { FromColumns([]string{"a"}, []string{"k"}, [][]float64{{1}, {2}}) })
	assertPanics(t, func() { FromColumns([]string{"a"}, []string{"k", "k"}, [][]float64{{1, 2}}) })
	assertPanics(t, func() { FromColumns([]string{"a"}, []string{"k"}, [][]float64{{1, 2}}) })
	assertPanics(t, func() { FromColumns([]string{"a"}, []string{"k"}, [][]float64{{-1}}) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestKeyIndexAndAccessors(t *testing.T) {
	d := fig2Data()
	i, ok := d.KeyIndex("i3")
	if !ok || d.Key(i) != "i3" {
		t.Fatal("KeyIndex/Key roundtrip failed")
	}
	if _, ok := d.KeyIndex("zz"); ok {
		t.Fatal("KeyIndex found a missing key")
	}
	if got := d.Weight(1, i); got != 12 {
		t.Fatalf("Weight = %v, want 12", got)
	}
	names := d.AssignmentNames()
	if len(names) != 3 || names[0] != "w1" {
		t.Fatalf("names = %v", names)
	}
	vec := d.WeightVector(i)
	if vec[0] != 10 || vec[1] != 12 || vec[2] != 15 {
		t.Fatalf("WeightVector = %v", vec)
	}
	if got := len(d.Column(2)); got != 6 {
		t.Fatalf("Column length = %d", got)
	}
	if got := d.AllAssignments(); len(got) != 3 || got[2] != 2 {
		t.Fatalf("AllAssignments = %v", got)
	}
}

func TestTotalsAndSupport(t *testing.T) {
	d := fig2Data()
	if got := d.Total(0); got != 50 {
		t.Fatalf("Total(w1) = %v, want 50", got)
	}
	if got := d.Total(1); got != 72 {
		t.Fatalf("Total(w2) = %v, want 72", got)
	}
	if got := d.SupportSize(0); got != 5 {
		t.Fatalf("SupportSize(w1) = %v, want 5", got)
	}
	if got := d.DistinctKeys([]int{0, 1, 2}); got != 6 {
		t.Fatalf("DistinctKeys = %v, want 6", got)
	}
	if got := d.DistinctKeys([]int{2}); got != 5 {
		t.Fatalf("DistinctKeys(w3) = %v, want 5", got)
	}
}

func TestSumsNoPredicate(t *testing.T) {
	d := fig2Data()
	R := []int{0, 1, 2}
	if got := d.SumMax(R, nil); got != 20+15+15+20+15+10 {
		t.Fatalf("SumMax = %v", got)
	}
	if got := d.SumMin(R, nil); got != 10+0+10+0+0+10 {
		t.Fatalf("SumMin = %v", got)
	}
	if got := d.SumRange(R, nil); got != d.SumMax(R, nil)-d.SumMin(R, nil) {
		t.Fatalf("SumRange = %v", got)
	}
	if got := d.SumSingle(0, nil); got != 50 {
		t.Fatalf("SumSingle = %v", got)
	}
}

func TestSumLthLargestAndMedian(t *testing.T) {
	d := fig2Data()
	R := []int{0, 1, 2}
	// ℓ=1 must equal the max sum, ℓ=|R| the min sum.
	if got := d.SumLthLargest(R, 1, nil); got != d.SumMax(R, nil) {
		t.Fatalf("SumLthLargest(1) = %v", got)
	}
	if got := d.SumLthLargest(R, 3, nil); got != d.SumMin(R, nil) {
		t.Fatalf("SumLthLargest(3) = %v", got)
	}
	// Medians by hand: i1: {15,20,10}→15; i2: {0,10,15}→10; i3: {10,12,15}→12;
	// i4: {5,20,0}→5; i5: {10,0,15}→10; i6: 10.
	if got := d.SumLthLargest(R, 2, nil); got != 15+10+12+5+10+10 {
		t.Fatalf("median sum = %v, want 62", got)
	}
}

func TestLthLargestValidation(t *testing.T) {
	assertPanics(t, func() { LthLargestR([]float64{1, 2}, nil, 0) })
	assertPanics(t, func() { LthLargestR([]float64{1, 2}, nil, 3) })
	assertPanics(t, func() { LthLargestR([]float64{1, 2, 3}, []int{0}, 2) })
}

func TestWeightedJaccard(t *testing.T) {
	d := fig2Data()
	R := []int{0, 1}
	// Corrected min row sums to 15+0+10+5+0+10 = 40; max sums to 82.
	want := 40.0 / 82.0
	if got := d.WeightedJaccard(R, nil); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Jaccard = %v, want %v", got, want)
	}
	// Identical assignments have similarity 1.
	same := FromColumns([]string{"a", "b"}, []string{"x", "y"}, [][]float64{{1, 2}, {1, 2}})
	if got := same.WeightedJaccard([]int{0, 1}, nil); got != 1 {
		t.Fatalf("identical Jaccard = %v", got)
	}
	// Empty selection: defined as 1.
	none := func(string) bool { return false }
	if got := d.WeightedJaccard(R, none); got != 1 {
		t.Fatalf("empty Jaccard = %v", got)
	}
}

func TestRestrict(t *testing.T) {
	d := fig2Data()
	r := d.Restrict([]int{1, 2})
	if r.NumAssignments() != 2 {
		t.Fatalf("restricted assignments = %d", r.NumAssignments())
	}
	// All six keys have positive weight in w2 or w3.
	if r.NumKeys() != 6 {
		t.Fatalf("restricted keys = %d", r.NumKeys())
	}
	if got := r.WeightByKey(0, "i5"); got != 0 {
		t.Fatalf("restricted w2(i5) = %v", got)
	}
	if got := r.WeightByKey(1, "i5"); got != 15 {
		t.Fatalf("restricted w3(i5) = %v", got)
	}
	// Restricting to w1 alone drops i2, whose w1 weight is 0.
	r1 := d.Restrict([]int{0})
	if r1.NumKeys() != 5 {
		t.Fatalf("restricted-to-w1 keys = %d, want 5", r1.NumKeys())
	}
	if _, ok := r1.KeyIndex("i2"); ok {
		t.Fatal("i2 should have been dropped")
	}
}

func TestUniform(t *testing.T) {
	d := fig2Data()
	u := d.Uniform()
	for b := 0; b < u.NumAssignments(); b++ {
		for i := 0; i < u.NumKeys(); i++ {
			w, orig := u.Weight(b, i), d.Weight(b, i)
			if orig > 0 && w != 1 {
				t.Fatalf("uniform weight = %v for positive original", w)
			}
			if orig == 0 && w != 0 {
				t.Fatalf("uniform weight = %v for zero original", w)
			}
		}
	}
	if got := u.Total(0); got != 5 {
		t.Fatalf("uniform total = %v, want support size 5", got)
	}
}

func TestPerKeyFunctionProperties(t *testing.T) {
	// Property-based invariants: 0 ≤ min ≤ max, L1 = max − min ≥ 0,
	// ℓ-th largest is monotone nonincreasing in ℓ.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vec := make([]float64, len(raw))
		for i, r := range raw {
			vec[i] = float64(r % 1000)
		}
		mn, mx := MinR(vec, nil), MaxR(vec, nil)
		if mn < 0 || mn > mx {
			return false
		}
		if RangeR(vec, nil) != mx-mn {
			return false
		}
		prev := math.Inf(1)
		for l := 1; l <= len(vec); l++ {
			v := LthLargestR(vec, nil, l)
			if v > prev {
				return false
			}
			prev = v
		}
		return LthLargestR(vec, nil, 1) == mx && LthLargestR(vec, nil, len(vec)) == mn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyRSubsetBehaviour(t *testing.T) {
	vec := []float64{3, 7}
	if got := MaxR(vec, []int{}); got != 0 {
		t.Fatalf("MaxR(empty R) = %v", got)
	}
	if got := MinR(vec, []int{}); got != 0 {
		t.Fatalf("MinR(empty R) = %v", got)
	}
}

func TestBigRandomSumsConsistency(t *testing.T) {
	// Σ max − Σ min must equal Σ L1 for any data (identity of Eq. 2).
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder("a", "b", "c", "d")
	for i := 0; i < 2000; i++ {
		key := "k" + itoa(i)
		for a := 0; a < 4; a++ {
			if rng.Float64() < 0.3 {
				continue
			}
			b.Add(a, key, rng.Float64()*1000)
		}
	}
	d := b.Build()
	R := []int{0, 1, 2, 3}
	lhs := d.SumMax(R, nil) - d.SumMin(R, nil)
	rhs := d.SumRange(R, nil)
	if math.Abs(lhs-rhs) > 1e-6*math.Abs(rhs)+1e-9 {
		t.Fatalf("Σmax−Σmin = %v, ΣL1 = %v", lhs, rhs)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func BenchmarkBuilderAdd(b *testing.B) {
	bld := NewBuilder("bytes", "packets")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld.Add(i%2, "key-"+itoa(i%50000), 1.5)
	}
}

func BenchmarkSumMax(b *testing.B) {
	bld := NewBuilder("a", "b", "c")
	for i := 0; i < 50000; i++ {
		bld.Add(i%3, "key-"+itoa(i), float64(i%977))
	}
	d := bld.Build()
	R := []int{0, 1, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.SumMax(R, nil)
	}
}

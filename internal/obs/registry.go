package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// Registry collects metric families and renders them in the Prometheus
// text exposition format (version 0.0.4). It is instance-scoped — nothing
// is registered into process globals — and safe for concurrent use.
//
// Counters and gauges are function-backed: the registry stores a closure
// and samples it at scrape time, so existing expvar.Int counters and
// struct fields can be exposed without double bookkeeping.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	series []series
}

type series struct {
	labels  string // rendered label pairs without braces, e.g. `peer="x:1"`
	intFn   func() int64
	floatFn func() float64
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) add(name, help, typ, labels string, s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	for _, existing := range f.series {
		if existing.labels == labels {
			panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, labels))
		}
	}
	s.labels = labels
	f.series = append(f.series, s)
}

// Counter registers a function-backed counter with no labels.
func (r *Registry) Counter(name, help string, fn func() int64) {
	r.add(name, help, "counter", "", series{intFn: fn})
}

// CounterL registers a function-backed counter with rendered label pairs
// (e.g. `peer="127.0.0.1:9001"` — no surrounding braces).
func (r *Registry) CounterL(name, help, labels string, fn func() int64) {
	r.add(name, help, "counter", labels, series{intFn: fn})
}

// Gauge registers a function-backed gauge with no labels.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.add(name, help, "gauge", "", series{floatFn: fn})
}

// GaugeL registers a function-backed gauge with rendered label pairs.
func (r *Registry) GaugeL(name, help, labels string, fn func() float64) {
	r.add(name, help, "gauge", labels, series{floatFn: fn})
}

// NewHistogram creates, registers, and returns a histogram with no labels.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	h := &Histogram{}
	r.add(name, help, "histogram", "", series{hist: h})
	return h
}

// NewHistogramL creates, registers, and returns a histogram with rendered
// label pairs.
func (r *Registry) NewHistogramL(name, help, labels string) *Histogram {
	h := &Histogram{}
	r.add(name, help, "histogram", labels, series{hist: h})
	return h
}

// RegisterHistogram attaches an existing histogram (e.g. one owned by the
// store) under a name and label set.
func (r *Registry) RegisterHistogram(name, help, labels string, h *Histogram) {
	r.add(name, help, "histogram", labels, series{hist: h})
}

// Label renders one label pair, escaping the value per the exposition
// format (backslash, double quote, newline).
func Label(key, value string) string {
	out := make([]byte, 0, len(key)+len(value)+3)
	out = append(out, key...)
	out = append(out, '=', '"')
	for i := 0; i < len(value); i++ {
		switch c := value[i]; c {
		case '\\', '"':
			out = append(out, '\\', c)
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, c)
		}
	}
	out = append(out, '"')
	return string(out)
}

func wrapLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// WritePrometheus renders every registered family in registration order.
// Histograms emit cumulative le buckets in seconds (only buckets that
// contain observations, plus +Inf), _sum in seconds, and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	// Series slices are append-only; copy headers so rendering can run
	// outside the lock.
	snap := make([][]series, len(fams))
	for i, f := range fams {
		snap[i] = append([]series(nil), f.series...)
	}
	r.mu.Unlock()

	for i, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		// Stable output: sort series by label string within a family.
		ser := snap[i]
		sort.SliceStable(ser, func(a, b int) bool { return ser[a].labels < ser[b].labels })
		for _, s := range ser {
			var err error
			switch {
			case s.hist != nil:
				err = writeHistogram(w, f.name, s.labels, s.hist)
			case s.intFn != nil:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, wrapLabels(s.labels, ""), s.intFn())
			case s.floatFn != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, wrapLabels(s.labels, ""),
					strconv.FormatFloat(s.floatFn(), 'g', -1, 64))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	s := h.Snapshot()
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		le := strconv.FormatFloat(float64(BucketUpper(i))/1e9, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, wrapLabels(labels, Label("le", le)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		name, wrapLabels(labels, `le="+Inf"`), s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, wrapLabels(labels, ""),
		strconv.FormatFloat(float64(s.Sum)/1e9, 'g', -1, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, wrapLabels(labels, ""), s.Count)
	return err
}

// Handler returns an http.Handler serving the exposition text.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Trace records named spans for one request. All methods are nil-safe so
// the untraced path pays a single pointer compare: handlers hold a *Trace
// that is nil unless the client asked for tracing or a ring is attached.
//
// Spans may be added from multiple goroutines (the cluster router records
// per-peer spans from its scatter workers).
type Trace struct {
	ID    uint64
	Op    string
	began time.Time

	mu    sync.Mutex
	spans []Span
}

// Span is one timed stage inside a trace. Start is the offset from the
// beginning of the trace.
type Span struct {
	Name    string  `json:"name"`
	StartUs float64 `json:"start_us"`
	DurUs   float64 `json:"dur_us"`
}

// NewTrace starts a trace clock. Op is a short human label for the
// request ("query agg=l1 est=aw").
func NewTrace(id uint64, op string) *Trace {
	return &Trace{ID: id, Op: op, began: time.Now()}
}

// SpanTimer measures one span; obtain via Trace.Start, finish with End.
type SpanTimer struct {
	t     *Trace
	name  string
	start time.Time
}

// Start begins a span. Safe on a nil trace (End is then a no-op).
func (t *Trace) Start(name string) SpanTimer {
	if t == nil {
		return SpanTimer{}
	}
	return SpanTimer{t: t, name: name, start: time.Now()}
}

// End closes the span and appends it to the trace.
func (st SpanTimer) End() {
	if st.t == nil {
		return
	}
	st.t.Add(st.name, st.start, time.Since(st.start))
}

// Add appends a span measured externally (e.g. on another goroutine).
// Safe on a nil trace.
func (t *Trace) Add(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	sp := Span{
		Name:    name,
		StartUs: float64(start.Sub(t.began)) / 1e3,
		DurUs:   float64(d) / 1e3,
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Report is the JSON-facing form of a finished trace.
type Report struct {
	ID      uint64    `json:"id"`
	Op      string    `json:"op"`
	Start   time.Time `json:"start"`
	TotalUs float64   `json:"total_us"`
	Spans   []Span    `json:"spans"`
}

// Report finalizes the trace. Safe on a nil trace (returns a zero Report).
func (t *Trace) Report() Report {
	if t == nil {
		return Report{}
	}
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	return Report{
		ID:      t.ID,
		Op:      t.Op,
		Start:   t.began,
		TotalUs: float64(time.Since(t.began)) / 1e3,
		Spans:   spans,
	}
}

// TraceRing keeps the last capacity trace reports in memory. All methods
// are nil-safe so components can thread an optional ring without checks.
type TraceRing struct {
	nextID atomic.Uint64

	mu   sync.Mutex
	buf  []Report
	next int
	full bool
}

// NewTraceRing returns a ring holding up to capacity reports.
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]Report, capacity)}
}

// NextID allocates a process-unique trace ID. Safe on a nil ring.
func (r *TraceRing) NextID() uint64 {
	if r == nil {
		return 0
	}
	return r.nextID.Add(1)
}

// Add stores a finished report, evicting the oldest. Safe on a nil ring.
func (r *TraceRing) Add(rep Report) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = rep
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.mu.Unlock()
}

// Reports returns the retained traces, newest first. Safe on a nil ring.
func (r *TraceRing) Reports() []Report {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]Report, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recently written slot.
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

package obs

import (
	"math/bits"
	"sync"
	"testing"
	"time"
)

// Exhaustive over small values and boundary-adjacent probes over the full
// range: every value must land in the bucket whose [lower, upper) range
// contains it, and bucket lowers must be strictly increasing.
func TestBucketBoundaryExactness(t *testing.T) {
	for i := 1; i < numBuckets; i++ {
		if BucketLower(i) <= BucketLower(i-1) {
			t.Fatalf("bucket lowers not increasing at %d: %d <= %d",
				i, BucketLower(i), BucketLower(i-1))
		}
	}
	check := func(v uint64) {
		t.Helper()
		i := bucketIndex(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if lo := BucketLower(i); v < lo {
			t.Fatalf("value %d below bucket %d lower %d", v, i, lo)
		}
		if up := BucketUpper(i); i < numBuckets-1 && v >= up {
			t.Fatalf("value %d at/above bucket %d upper %d", v, i, up)
		}
	}
	for v := uint64(0); v < 1<<12; v++ {
		check(v)
	}
	// Probe every bucket boundary and its neighbours across all octaves.
	for i := 0; i < numBuckets; i++ {
		lo := BucketLower(i)
		check(lo)
		if lo > 0 {
			check(lo - 1)
		}
		check(lo + 1)
	}
	check(^uint64(0)) // max uint64 must stay in the top bucket
	if got := bucketIndex(^uint64(0)); got != numBuckets-1 {
		t.Fatalf("max value in bucket %d, want %d", got, numBuckets-1)
	}
	// Relative bucket width above the first octaves is at most 1/subCount.
	for i := 2 * subCount; i < numBuckets-1; i++ {
		lo, up := BucketLower(i), BucketUpper(i)
		if width := up - lo; width*subCount > lo {
			t.Fatalf("bucket %d [%d,%d) wider than lower/%d", i, lo, up, subCount)
		}
	}
	_ = bits.Len64 // keep the import meaningful if constants change
}

func TestRecordZeroAllocs(t *testing.T) {
	h := &Histogram{}
	ds := []time.Duration{0, 1, 17 * time.Microsecond, 3 * time.Millisecond, 2 * time.Second, -5}
	n := 0
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(ds[n%len(ds)])
		n++
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f per op, want 0", allocs)
	}
}

func TestHistogramCountsSumMax(t *testing.T) {
	h := &Histogram{}
	h.Record(10 * time.Microsecond)
	h.Record(10 * time.Microsecond)
	h.Record(5 * time.Millisecond)
	h.Record(-time.Second) // clamps to 0
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if want := 20*time.Microsecond + 5*time.Millisecond; s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	if s.Max != 5*time.Millisecond {
		t.Fatalf("max = %v, want 5ms", s.Max)
	}
	if s.Counts[0] != 1 {
		t.Fatalf("clamped negative not in bucket 0: %d", s.Counts[0])
	}
}

func TestQuantileBounds(t *testing.T) {
	h := &Histogram{}
	var empty Snapshot
	if empty.P99() != 0 {
		t.Fatal("empty quantile should be 0")
	}
	// 90 fast observations, 10 slow: p50 must bound 1ms, p99 must bound 1s.
	for i := 0; i < 90; i++ {
		h.Record(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(time.Second)
	}
	s := h.Snapshot()
	if p := s.P50(); p < time.Millisecond || p > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want within [1ms, 2ms]", p)
	}
	// The p99 observation is in the 1s bucket; upper bound clamps to Max.
	if p := s.P99(); p != time.Second {
		t.Fatalf("p99 = %v, want exactly max (1s)", p)
	}
	if s.Quantile(1.0) != time.Second {
		t.Fatalf("q1.0 = %v, want 1s", s.Quantile(1.0))
	}
	if m := s.Mean(); m < 90*time.Millisecond || m > 120*time.Millisecond {
		t.Fatalf("mean = %v, want ~100.9ms", m)
	}
}

// Race hammer: concurrent writers and snapshot readers under -race, with
// an exact total-count check once the writers finish.
func TestHistogramConcurrentRecordSnapshot(t *testing.T) {
	h := &Histogram{}
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s := h.Snapshot()
					var sum uint64
					for _, c := range s.Counts {
						sum += c
					}
					if sum != s.Count {
						t.Error("snapshot count does not match bucket sum")
						return
					}
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(seed int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				h.Record(time.Duration(seed*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if s := h.Snapshot(); s.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", s.Count, writers*perWriter)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i))
	}
}

// Package obs is the repo's observability layer: lock-free latency
// histograms, a dependency-free Prometheus text registry, request-scoped
// trace span recording with a bounded ring of recent traces, and slog
// helpers for component-tagged structured logging.
//
// Everything here is stdlib-only and instance-scoped: like the server's
// expvar counters, nothing registers into process globals, so two servers
// in one test process never collide.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram buckets nanosecond durations logarithmically with
// subCount sub-buckets per power-of-two octave, so relative bucket width
// is at most 1/subCount (25%) everywhere above the first octaves. Values
// 0..3 get exact unit buckets. The top bucket absorbs everything with 63
// significant bits, so no input can index out of range.
const (
	subBits    = 2
	subCount   = 1 << subBits // sub-buckets per octave
	numBuckets = 63 * subCount
)

// Histogram is a fixed-size, lock-free latency histogram. Record is
// wait-free apart from a max CAS loop and performs zero heap allocations;
// it is safe for any number of concurrent writers and readers.
//
// The zero value is NOT ready to use from the registry's point of view
// (it has no name); create histograms via Registry.NewHistogram, or use a
// bare &Histogram{} when only Record/Snapshot are needed.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// bucketIndex maps a non-negative nanosecond count onto a bucket.
//
//cws:hotpath
func bucketIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // >= subBits
	sub := (v >> (uint(exp) - subBits)) & (subCount - 1)
	return (exp-subBits)*subCount + int(sub) + subCount
}

// BucketLower returns the smallest nanosecond value that lands in bucket i.
func BucketLower(i int) uint64 {
	if i < subCount {
		return uint64(i)
	}
	j := i - subCount
	exp := uint(j/subCount) + subBits
	sub := uint64(j % subCount)
	return 1<<exp | sub<<(exp-subBits)
}

// BucketUpper returns the exclusive upper bound of bucket i in nanoseconds.
func BucketUpper(i int) uint64 {
	if i >= numBuckets-1 {
		return ^uint64(0)
	}
	return BucketLower(i + 1)
}

// Record adds one observation. Negative durations clamp to zero.
//
//cws:hotpath
func (h *Histogram) Record(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot is a point-in-time copy of a histogram's state. Concurrent
// Records during the copy may tear across buckets by a few counts; each
// individual counter read is atomic.
type Snapshot struct {
	Counts [numBuckets]uint64
	Count  uint64
	Sum    time.Duration
	Max    time.Duration
}

// Snapshot copies the current counters.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = time.Duration(h.sum.Load())
	s.Max = time.Duration(h.max.Load())
	return s
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// recorded values: the exclusive upper edge of the bucket containing the
// ceil(q*count)-th observation, clamped to the recorded max. Returns 0
// for an empty histogram.
func (s *Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			upper := BucketUpper(i)
			if time.Duration(upper) > s.Max {
				return s.Max
			}
			return time.Duration(upper)
		}
	}
	return s.Max
}

// P50 is the median upper bound.
func (s *Snapshot) P50() time.Duration { return s.Quantile(0.50) }

// P95 is the 95th-percentile upper bound.
func (s *Snapshot) P95() time.Duration { return s.Quantile(0.95) }

// P99 is the 99th-percentile upper bound.
func (s *Snapshot) P99() time.Duration { return s.Quantile(0.99) }

// Mean returns the arithmetic mean of recorded values, 0 when empty.
func (s *Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

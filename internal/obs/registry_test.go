package obs

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	var n int64 = 42
	r.Counter("cws_widgets_total", "Widgets made.", func() int64 { return n })
	r.GaugeL("cws_peer_state", "Peer state.", Label("peer", "a:1"), func() float64 { return 2 })
	h := r.NewHistogramL("cws_rpc_seconds", "RPC latency.", Label("peer", "a:1"))
	h.Record(100 * time.Microsecond)
	h.Record(100 * time.Microsecond)
	h.Record(50 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, w := range []string{
		"# HELP cws_widgets_total Widgets made.",
		"# TYPE cws_widgets_total counter",
		"cws_widgets_total 42",
		"# TYPE cws_peer_state gauge",
		`cws_peer_state{peer="a:1"} 2`,
		"# TYPE cws_rpc_seconds histogram",
		`cws_rpc_seconds_bucket{peer="a:1",le="+Inf"} 3`,
		`cws_rpc_seconds_count{peer="a:1"} 3`,
	} {
		if !strings.Contains(out, w) {
			t.Fatalf("missing %q in exposition:\n%s", w, out)
		}
	}
	if err := parseExposition(out); err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, out)
	}
	// Cumulative buckets: the two 100µs observations must appear in a
	// bucket before the 50ms one, and the last le bucket equals count.
	if !strings.Contains(out, `le=`) {
		t.Fatal("no le buckets emitted")
	}
}

// parseExposition is a minimal checker for the text format: every
// non-comment line must be `name{labels} value` with a float value, and
// histogram cumulative counts must be non-decreasing per series.
func parseExposition(text string) error {
	cum := map[string]float64{}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("no value separator in %q", line)
		}
		key, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("bad value in %q: %v", line, err)
		}
		if i := strings.Index(key, "_bucket"); i >= 0 {
			series := key[:i] // name without labels: le ordering is per family here
			if v < cum[series] {
				return fmt.Errorf("bucket counts decrease in %q", line)
			}
			cum[series] = v
		}
		if strings.Count(key, "{") != strings.Count(key, "}") {
			return fmt.Errorf("unbalanced braces in %q", key)
		}
	}
	return nil
}

func TestRegistryHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("cws_x_total", "X.", func() int64 { return 1 })
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("bad content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "cws_x_total 1") {
		t.Fatalf("body missing metric: %s", rec.Body.String())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("cws_dup_total", "D.", func() int64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("cws_dup_total", "D.", func() int64 { return 0 })
}

func TestLabelEscaping(t *testing.T) {
	if got := Label("p", `a"b\c`+"\n"); got != `p="a\"b\\c\n"` {
		t.Fatalf("Label escaping wrong: %s", got)
	}
}

package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	sp := tr.Start("x")
	sp.End()
	tr.Add("y", time.Now(), time.Millisecond)
	if rep := tr.Report(); rep.ID != 0 || len(rep.Spans) != 0 {
		t.Fatalf("nil trace produced a non-zero report: %+v", rep)
	}
	var ring *TraceRing
	if ring.NextID() != 0 {
		t.Fatal("nil ring NextID should be 0")
	}
	ring.Add(Report{})
	if ring.Reports() != nil {
		t.Fatal("nil ring Reports should be nil")
	}
}

func TestTraceSpansAndReport(t *testing.T) {
	tr := NewTrace(7, "query agg=sum")
	sp := tr.Start("parse")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Add("peer a:1 fetch", time.Now(), 3*time.Millisecond)
	rep := tr.Report()
	if rep.ID != 7 || rep.Op != "query agg=sum" {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if len(rep.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(rep.Spans))
	}
	if rep.Spans[0].Name != "parse" || rep.Spans[0].DurUs < 500 {
		t.Fatalf("parse span wrong: %+v", rep.Spans[0])
	}
	if rep.TotalUs < rep.Spans[0].DurUs {
		t.Fatalf("total %v < span %v", rep.TotalUs, rep.Spans[0].DurUs)
	}
}

func TestTraceConcurrentAdd(t *testing.T) {
	tr := NewTrace(1, "scatter")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Add("peer", time.Now(), time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Report().Spans); got != 800 {
		t.Fatalf("got %d spans, want 800", got)
	}
}

func TestTraceRingEvictionOrder(t *testing.T) {
	r := NewTraceRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(Report{ID: r.NextID()})
	}
	reps := r.Reports()
	if len(reps) != 3 {
		t.Fatalf("retained %d, want 3", len(reps))
	}
	// Newest first: 5, 4, 3.
	for i, want := range []uint64{5, 4, 3} {
		if reps[i].ID != want {
			t.Fatalf("reports[%d].ID = %d, want %d", i, reps[i].ID, want)
		}
	}
	partial := NewTraceRing(8)
	partial.Add(Report{ID: 1})
	partial.Add(Report{ID: 2})
	reps = partial.Reports()
	if len(reps) != 2 || reps[0].ID != 2 || reps[1].ID != 1 {
		t.Fatalf("partial ring wrong: %+v", reps)
	}
}

func TestLoggerLevelsAndFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hidden")
	lg.Warn("shown", "k", 1)
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, `"msg":"shown"`) {
		t.Fatalf("level/format filtering wrong: %s", out)
	}
	if _, err := NewLogger(&buf, "nope", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Fatal("bad format accepted")
	}
	if c := Component(nil, "server"); c == nil {
		t.Fatal("Component(nil) must return a usable logger")
	} else {
		c.Error("discarded") // must not panic
	}
	var tbuf bytes.Buffer
	tl, err := NewLogger(&tbuf, "debug", "text")
	if err != nil {
		t.Fatal(err)
	}
	Component(tl, "store").Debug("compacted", "epochs", 3)
	if !strings.Contains(tbuf.String(), "component=store") {
		t.Fatalf("component tag missing: %s", tbuf.String())
	}
}

package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger writing to w. level is one of
// debug|info|warn|error; format is text|json.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
}

// Component tags a logger with a component name ("server", "cluster",
// "store", "faults"). A nil base yields a no-op logger, so library code
// can log unconditionally.
func Component(base *slog.Logger, name string) *slog.Logger {
	if base == nil {
		return Nop()
	}
	return base.With("component", name)
}

// Nop returns a logger that discards everything.
func Nop() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// Package lint is cws-vet's analysis suite: five static analyzers that
// encode this repository's runtime correctness invariants as machine-checked
// compile-time properties. Each analyzer guards an invariant that the type
// system cannot see and that is otherwise enforced only dynamically (by
// AllocsPerRun tests, the race detector, or end-to-end bit-identity runs):
//
//   - uncheckedmerge: every fingerprint-bypassing sketch combine
//     (sketch.MergeUnchecked, the coordsample facade's
//     MergeSketchesUnchecked) is an audited escape hatch — call sites must
//     carry a //cws:allow-unchecked annotation with a reason, so the set of
//     places that can silently corrupt estimates is an explicit allowlist.
//   - hotpath: functions annotated //cws:hotpath (the PR-4 zero-allocation
//     ingest fast path) are transitively checked for allocation-prone
//     constructs, mutex operations, and channel sends; a manifest of
//     must-be-hot functions makes deleting an annotation itself a violation.
//   - atomicfield: a struct field accessed through sync/atomic anywhere must
//     be accessed atomically everywhere — the mixed-access races the race
//     detector only finds when the schedule cooperates.
//   - frozenwrite: types published through atomic.Pointer snapshots (and
//     types annotated //cws:frozen) must not have their fields written
//     outside construction — published snapshots are immutable.
//   - typederr: errors built in the sketch/store packages keep the typed
//     error contract (package-prefixed messages, %w when wrapping), and no
//     package flattens an error chain with fmt.Errorf("...%v", err).
//
// The package is deliberately self-contained over the standard library's
// go/ast and go/types (no golang.org/x/tools dependency): Analyzer, Pass,
// and the testdata-fixture harness in linttest mirror the go/analysis
// shapes closely enough that migrating to x/tools later is mechanical.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check, in the image of golang.org/x/tools'
// analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, documentation, and the
	// check_docs.sh gate. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by cws-vet -help.
	Doc string
	// Run reports the analyzer's diagnostics for one package.
	Run func(*Pass)
}

// Analyzers is the full cws-vet suite, in reporting order.
var Analyzers = []*Analyzer{
	UncheckedMerge,
	HotPath,
	AtomicField,
	FrozenWrite,
	TypedErr,
}

// AnalyzerNames returns the names of the suite's analyzers, sorted — the
// vocabulary the DESIGN.md "Invariants as code" section is checked against.
func AnalyzerNames() []string {
	names := make([]string, len(Analyzers))
	for i, a := range Analyzers {
		names[i] = a.Name
	}
	sort.Strings(names)
	return names
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer *Analyzer
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer.Name)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Report receives each diagnostic. The driver and the test harness
	// install their own sinks.
	Report func(Diagnostic)

	annotations *annotations                  // lazily built //cws: directive index
	funcDecls   map[*types.Func]*ast.FuncDecl // lazily built decl index
}

// NewPass assembles a Pass for one analyzer over one type-checked package.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info, Report: report}
}

// Reportf reports a diagnostic at pos. Diagnostics positioned in _test.go
// files are suppressed package-wide: the invariants are production-code
// invariants, and tests deliberately violate them (building legacy
// fingerprint-less sketches, mutating snapshots) to prove the dynamic
// detection works.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	p.Report(Diagnostic{Analyzer: p.Analyzer, Pos: position, Message: fmt.Sprintf(format, args...)})
}

// decl returns the declaration of a function defined in this package, or nil
// (cross-package functions, interface methods, builtins).
func (p *Pass) decl(fn *types.Func) *ast.FuncDecl {
	if p.funcDecls == nil {
		p.funcDecls = make(map[*types.Func]*ast.FuncDecl)
		for _, file := range p.Files {
			for _, d := range file.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
						p.funcDecls[obj] = fd
					}
				}
			}
		}
	}
	return p.funcDecls[fn]
}

// callee resolves the *types.Func a call expression statically invokes, or
// nil for calls through function values, builtins, and type conversions.
func (p *Pass) callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// RunAnalyzers runs every analyzer in the suite over one package, appending
// to the shared report sink.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) {
	for _, a := range Analyzers {
		a.Run(NewPass(a, fset, files, pkg, info, report))
	}
}

// pkgPathIs reports whether a package's import path names one of this
// module's packages identified by suffix — e.g. ("internal/sketch",
// "coordsample/internal/sketch") and the fixture package ("sketch") both
// match "internal/sketch"'s base name. Matching by suffix keeps the
// analyzers testable from testdata fixtures, whose import paths carry no
// module prefix.
func pkgPathIs(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	if path == suffix || strings.HasSuffix(path, "/"+suffix) {
		return true
	}
	base := suffix[strings.LastIndex(suffix, "/")+1:]
	return path == base || strings.HasSuffix(path, "/"+base)
}

package lint

import (
	"go/ast"
)

// UncheckedMerge turns the fingerprint-bypassing merge escape hatches into
// an audited allowlist.
//
// sketch.Merge refuses to combine sketches whose configuration fingerprints
// are absent or disagree — that verification is the PR-2 fix for the silent
// cross-configuration corruption hole. sketch.MergeUnchecked (and the
// coordsample facade's MergeSketchesUnchecked) deliberately bypass it for
// legacy fingerprint-less construction paths; a call site that reaches one
// of them with sketches of unknown provenance silently yields a merged
// sample that is not a bottom-k sample of anything. This analyzer flags
// every call to a bypassing combine unless the call site carries an
// explicit
//
//	//cws:allow-unchecked <reason>
//
// annotation (same line or the line above), so `git grep cws:allow-unchecked`
// is the complete audit of where verification is bypassed, each entry with
// its justification. Stale or reason-less annotations are flagged too.
var UncheckedMerge = &Analyzer{
	Name: "uncheckedmerge",
	Doc:  "flag fingerprint-bypassing sketch combines lacking a //cws:allow-unchecked annotation",
	Run:  runUncheckedMerge,
}

// bypassFuncs are the fingerprint-bypassing combines, by defining package
// (a pkgPathIs suffix) and function name.
var bypassFuncs = map[string][]string{
	"internal/sketch": {"MergeUnchecked"},
	"coordsample":     {"MergeSketchesUnchecked"},
}

func runUncheckedMerge(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.callee(call)
			if fn == nil {
				return true
			}
			for suffix, names := range bypassFuncs {
				if !pkgPathIs(fn.Pkg(), suffix) {
					continue
				}
				for _, name := range names {
					if fn.Name() != name {
						continue
					}
					if p.Allowed(call.Pos(), "allow-unchecked") {
						continue
					}
					p.Reportf(call.Pos(), "call to %s bypasses fingerprint verification and can silently corrupt every downstream estimate; use the fingerprint-checked merge, or annotate with //cws:allow-unchecked <reason>", fn.Name())
				}
			}
			return true
		})
	}
	p.CheckDirectives("allow-unchecked")
}

package lint_test

import (
	"testing"

	"coordsample/internal/lint"
	"coordsample/internal/lint/linttest"
)

func TestHotPath(t *testing.T) {
	linttest.Run(t, lint.HotPath, "hotpath")
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPath enforces the PR-4 zero-allocation ingest contract statically.
//
// The benchmarks assert 0 allocs/op through Sketcher.Offer and the binary
// /ingest decode loop, but AllocsPerRun only covers the paths the benchmark
// drives; a new branch that boxes an interface or builds a closure regresses
// the contract invisibly until the next benchmark run. This analyzer makes
// the contract a compile-time property: a function annotated
//
//	//cws:hotpath
//
// and everything it reaches through static calls inside its package is
// checked for allocation-prone constructs (closures, make/new/append,
// map and slice literals, string<->[]byte conversions, interface-boxing
// arguments, calls into formatting packages or allocating constructors),
// mutex operations, and channel sends. defer and go statements are flagged
// unconditionally. All other constructs are exempt on *cold* branches — an
// if (or switch case) body that ends by returning, panicking, or
// continuing, which is where the fast path's error handling and slow-path
// spills live.
//
// Deliberate exceptions — the amortized batch append, the flush-boundary
// mutex — carry //cws:allow-alloc <reason> at the construct's line.
//
// Deleting a //cws:hotpath annotation is itself an error for the functions
// on the requiredHot manifest below: the admission primitives in
// rank/hashing, BottomKBuilder's offer surface, the shard fan-in, and the
// server's binary decode loop must stay under contract.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "flag allocation-prone constructs, mutex ops, and channel sends in //cws:hotpath functions and their package-local callees",
	Run:  runHotPath,
}

// requiredHot is the manifest of functions that must carry //cws:hotpath,
// keyed by package-path suffix, valued by funcDisplayName. It applies only
// to this module's real packages (import paths under "coordsample/"), so
// testdata fixtures never trip it. A manifest entry naming a function that
// no longer exists is inert — renames are audited by review, not by vet.
var requiredHot = map[string][]string{
	"internal/hashing": {"Hash64", "Mix64", "Unit", "ShardHash"},
	"internal/rank":    {"Family.Quantile", "Family.RejectsSeed", "Family.SeedMayRankBelow"},
	"internal/sketch":  {"(*BottomKBuilder).Offer", "(*BottomKBuilder).AdmissionThreshold", "(*BottomKBuilder).NoteRejected"},
	"internal/shard": {
		"(*Sketcher).Offer", "(*Sketcher).offerHashed", "(*Sketcher).OfferBatch",
		"(*Lane).Offer", "(*Lane).offerHashed", "(*Lane).OfferBatch",
		"(*MultiSketcher).Offer", "(*MultiSketcher).OfferBatch", "(*MultiSketcher).OfferVector",
		"(*MultiLane).Offer", "(*MultiLane).OfferBatch", "(*MultiLane).OfferVector",
	},
	"internal/server": {"(*Server).ingestBinary", "(*ingestState).add", "(*ingestState).flush"},
	"internal/obs":    {"(*Histogram).Record", "bucketIndex"},
}

// hotSafePkgs are packages whose calls are presumed allocation-free on the
// hot path: arithmetic, bit manipulation, fixed-width codecs, buffered
// reads. Their "New*" constructors are still flagged (they allocate by
// design), as is sync outside Pool.Get/Put.
var hotSafePkgs = map[string]bool{
	"sync/atomic":     true,
	"math":            true,
	"math/bits":       true,
	"encoding/binary": true,
	"io":              true,
	"bufio":           true,
	"expvar":          true,
	"unicode/utf8":    true,
}

func runHotPath(p *Pass) {
	required := p.requiredHotNames()

	// Roots: annotated functions. Also enforce the manifest while scanning.
	hot := make(map[*ast.FuncDecl]bool)
	var order []*ast.FuncDecl // file order, for deterministic diagnostics
	var worklist []*ast.FuncDecl
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			annotated := p.FuncAnnotated(fd, "hotpath")
			if required[funcDisplayName(p, fd)] && !annotated {
				p.Reportf(fd.Pos(), "%s is on the hot-path manifest (the zero-allocation ingest contract, DESIGN §10) and must carry a //cws:hotpath annotation; restore the annotation rather than silently retiring the contract", funcDisplayName(p, fd))
			}
			if annotated && fd.Body != nil {
				hot[fd] = true
				worklist = append(worklist, fd)
			}
		}
	}

	// Transitive closure over package-local static calls: a helper reached
	// from hot code is hot, whether or not it is annotated itself.
	for len(worklist) > 0 {
		fd := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // the closure itself is flagged; its body runs elsewhere
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.callee(call)
			if fn == nil || fn.Pkg() != p.Pkg {
				return true
			}
			if d := p.decl(fn); d != nil && d.Body != nil && !hot[d] {
				hot[d] = true
				worklist = append(worklist, d)
			}
			return true
		})
	}

	for _, file := range p.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hot[fd] {
				order = append(order, fd)
			}
		}
	}
	for _, fd := range order {
		p.checkHotFunc(fd)
	}
	p.CheckDirectives("allow-alloc")
}

// requiredHotNames returns the manifest entries applying to this package, or
// nil for packages outside the module.
func (p *Pass) requiredHotNames() map[string]bool {
	if p.Pkg == nil || !strings.HasPrefix(p.Pkg.Path(), "coordsample/") {
		return nil
	}
	names := make(map[string]bool)
	for suffix, list := range requiredHot {
		if !pkgPathIs(p.Pkg, suffix) {
			continue
		}
		for _, name := range list {
			names[name] = true
		}
	}
	return names
}

// checkHotFunc flags the forbidden constructs in one hot function.
func (p *Pass) checkHotFunc(fd *ast.FuncDecl) {
	cold := coldRanges(fd.Body)
	isCold := func(pos token.Pos) bool {
		for _, r := range cold {
			if r.from <= pos && pos < r.to {
				return true
			}
		}
		return false
	}
	name := funcDisplayName(p, fd)
	flag := func(pos token.Pos, format string, args ...any) {
		if p.Allowed(pos, "allow-alloc") {
			return
		}
		args = append(args, name)
		p.Reportf(pos, format+" in hot-path function %s; move it off the fast path, or annotate with //cws:allow-alloc <reason>", args...)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// defer and go are flagged even on cold branches: one defer
			// anywhere forces the function's frame into deferred-call
			// bookkeeping on every invocation, hot or not.
			flag(n.Pos(), "defer")
			return true
		case *ast.GoStmt:
			flag(n.Pos(), "go statement (goroutine spawn)")
			return true
		case *ast.FuncLit:
			if !isCold(n.Pos()) {
				flag(n.Pos(), "closure allocation")
			}
			return false // its body executes outside this call's budget
		case *ast.SendStmt:
			if !isCold(n.Pos()) {
				flag(n.Pos(), "channel send (blocks on a full channel)")
			}
			return true
		case *ast.CompositeLit:
			if isCold(n.Pos()) {
				return true
			}
			if tv, ok := p.Info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					flag(n.Pos(), "map literal allocation")
				case *types.Slice:
					flag(n.Pos(), "slice literal allocation")
				}
			}
			return true
		case *ast.CallExpr:
			p.checkHotCall(n, isCold, flag)
			return true
		}
		return true
	})
}

// checkHotCall classifies one call inside a hot function.
func (p *Pass) checkHotCall(call *ast.CallExpr, isCold func(token.Pos) bool, flag func(token.Pos, string, ...any)) {
	if isCold(call.Pos()) {
		return
	}
	// Conversions: string <-> []byte/[]rune copy and allocate.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if stringBytesConversion(tv.Type, p.Info.Types[call.Args[0]].Type) {
			flag(call.Pos(), "string/[]byte conversion (copies and allocates)")
		}
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				flag(call.Pos(), "make")
			case "new":
				flag(call.Pos(), "new")
			case "append":
				flag(call.Pos(), "append (may grow and reallocate)")
			}
			return
		}
	}
	fn := p.callee(call)
	if fn == nil || fn.Pkg() == nil {
		return // function-value call or universe builtin; nothing resolvable
	}
	p.checkHotCallArgs(call, fn, flag)
	if fn.Pkg() == p.Pkg {
		return // covered by the transitive closure
	}
	path := fn.Pkg().Path()
	switch {
	case path == "sync":
		recv := recvTypeName(fn)
		switch {
		case recv == "Pool" && (fn.Name() == "Get" || fn.Name() == "Put"):
			// sync.Pool is the sanctioned amortization mechanism.
		case (recv == "Mutex" || recv == "RWMutex") && strings.Contains(strings.ToLower(fn.Name()), "lock"):
			flag(call.Pos(), "mutex %s.%s", recv, fn.Name())
		default:
			flag(call.Pos(), "call to sync.%s", fn.Name())
		}
	case hotSafePkgs[path]:
		if strings.HasPrefix(fn.Name(), "New") {
			flag(call.Pos(), "allocating constructor %s.%s", fn.Pkg().Name(), fn.Name())
		}
	case manifestHot(fn):
		// A declared hot-path primitive in another module package; its own
		// package's hotpath pass checks its body.
	case strings.HasPrefix(path, "coordsample/"):
		flag(call.Pos(), "call to %s.%s, which is not on the hot-path manifest", fn.Pkg().Name(), fn.Name())
	default:
		flag(call.Pos(), "call to %s.%s", fn.Pkg().Name(), fn.Name())
	}
}

// checkHotCallArgs flags arguments boxed into interface parameters — the
// conversion heap-allocates for non-pointer values.
func (p *Pass) checkHotCallArgs(call *ast.CallExpr, fn *types.Func, flag func(token.Pos, string, ...any)) {
	// .Type() rather than .Signature(): the latter needs go >= 1.23 and CI
	// type-checks this package with the module's go 1.22.
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if call.Ellipsis.IsValid() {
		return // a spread slice is passed as-is, no per-element boxing
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			s, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice)
			if !ok {
				return
			}
			param = s.Elem()
		case i < params.Len():
			param = params.At(i).Type()
		default:
			return
		}
		if _, ok := param.Underlying().(*types.Interface); !ok {
			continue
		}
		tv, ok := p.Info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		at := tv.Type
		if _, ok := at.Underlying().(*types.Interface); ok {
			continue // interface to interface: no boxing
		}
		if _, ok := at.Underlying().(*types.Pointer); ok {
			continue // pointers fit the interface data word
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		flag(arg.Pos(), "argument boxed into interface parameter of %s.%s", pkgNameOf(fn), fn.Name())
	}
}

func pkgNameOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return "?"
	}
	return fn.Pkg().Name()
}

// manifestHot reports whether a cross-package callee is a declared hot-path
// primitive (on the requiredHot manifest of its own module package).
func manifestHot(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || !strings.HasPrefix(pkg.Path(), "coordsample/") {
		return false
	}
	display := typesFuncDisplayName(fn)
	for suffix, list := range requiredHot {
		if !pkgPathIs(pkg, suffix) {
			continue
		}
		for _, name := range list {
			if name == display {
				return true
			}
		}
	}
	return false
}

// typesFuncDisplayName is funcDisplayName for a *types.Func (cross-package
// callees have no AST in this pass).
func typesFuncDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	return recvDisplay(sig.Recv().Type()) + "." + fn.Name()
}

func recvDisplay(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		return "(*" + bareTypeName(ptr.Elem()) + ")"
	}
	return bareTypeName(t)
}

func bareTypeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// recvTypeName returns the bare receiver type name of a method, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return bareTypeName(t)
}

// stringBytesConversion reports whether a conversion to dst from src is a
// string <-> []byte/[]rune copy.
func stringBytesConversion(dst, src types.Type) bool {
	if src == nil {
		return false
	}
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// span is a half-open position range.
type span struct{ from, to token.Pos }

// coldRanges collects the body's cold regions: if-statement and switch-case
// bodies that terminate in return, panic, continue, or break — the error
// handling and slow-path spills interleaved with the fast path.
func coldRanges(body *ast.BlockStmt) []span {
	var cold []span
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if blockTerminates(n.Body.List) {
				cold = append(cold, span{n.Body.Pos(), n.Body.End()})
			}
			if els, ok := n.Else.(*ast.BlockStmt); ok && blockTerminates(els.List) {
				cold = append(cold, span{els.Pos(), els.End()})
			}
		case *ast.CaseClause:
			if blockTerminates(n.Body) {
				from := n.Colon + 1
				to := n.End()
				cold = append(cold, span{from, to})
			}
		}
		return true
	})
	return cold
}

// blockTerminates reports whether a statement list ends by leaving the
// enclosing flow: return, panic, continue, break, or a nested block/if that
// does.
func blockTerminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.CONTINUE || last.Tok == token.BREAK || last.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
		return false
	case *ast.BlockStmt:
		return blockTerminates(last.List)
	case *ast.IfStmt:
		els, ok := last.Else.(*ast.BlockStmt)
		return ok && blockTerminates(last.Body.List) && blockTerminates(els.List)
	}
	return false
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FrozenWrite enforces published-snapshot immutability.
//
// The server's freeze-and-swap memory model (DESIGN §8) publishes serving
// state through an atomic.Pointer: queries load the pointer once and read
// the snapshot without synchronization, which is only sound because a
// snapshot is never written after the single atomic publish. The type
// system cannot express "immutable after construction", so this analyzer
// does: a type is *frozen* when it appears as the type argument of an
// atomic.Pointer[T] anywhere in its package, or when its declaration
// carries a //cws:frozen annotation (used for the satellite state a
// snapshot links to, like the memoized per-window rangeState). Field writes
// to a frozen type (x.f = v, x.f += v, x.f++) are permitted only inside
// functions that return the type — its constructors and freeze builders —
// or at lines annotated
//
//	//cws:allow-mutation <reason>
//
// Internally synchronized mutable state hanging off a snapshot (mutex-
// guarded memo maps) stays expressible: map inserts are not field writes,
// and the mutex fields themselves are never reassigned.
var FrozenWrite = &Analyzer{
	Name: "frozenwrite",
	Doc:  "flag field writes to atomic.Pointer-published (or //cws:frozen) types outside their constructors",
	Run:  runFrozenWrite,
}

func runFrozenWrite(p *Pass) {
	frozen := p.frozenTypes()
	if len(frozen) == 0 {
		p.CheckDirectives("allow-mutation")
		return
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkFuncWrites(fd, frozen)
		}
	}
	p.CheckDirectives("allow-mutation")
}

// frozenTypes collects the package's frozen named types: atomic.Pointer
// type arguments plus //cws:frozen-annotated declarations.
func (p *Pass) frozenTypes() map[*types.Named]bool {
	frozen := make(map[*types.Named]bool)
	// Any atomic.Pointer[T] type expression in the package (field
	// declarations, variables, composite literals) freezes T.
	for _, tv := range p.Info.Types {
		named := atomicPointerArg(tv.Type)
		if named != nil && named.Obj().Pkg() == p.Pkg {
			frozen[named] = true
		}
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !p.TypeAnnotated(gd, ts, "frozen") {
					continue
				}
				if obj, ok := p.Info.Defs[ts.Name].(*types.TypeName); ok {
					if named, ok := obj.Type().(*types.Named); ok {
						frozen[named] = true
					}
				}
			}
		}
	}
	return frozen
}

// atomicPointerArg returns T when t is sync/atomic.Pointer[T] (or *...), and
// nil otherwise.
func atomicPointerArg(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || obj.Name() != "Pointer" {
		return nil
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return nil
	}
	arg := args.At(0)
	if ptr, ok := arg.(*types.Pointer); ok {
		arg = ptr.Elem()
	}
	argNamed, _ := arg.(*types.Named)
	return argNamed
}

// checkFuncWrites flags frozen-type field writes in one function, unless
// the function's results include the frozen type (constructor/builder).
func (p *Pass) checkFuncWrites(fd *ast.FuncDecl, frozen map[*types.Named]bool) {
	constructs := make(map[*types.Named]bool)
	if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
		// .Type() rather than .Signature(): the latter needs go ≥ 1.23 and
		// CI type-checks this package with the module's go 1.22.
		sig := obj.Type().(*types.Signature)
		for i := 0; i < sig.Results().Len(); i++ {
			t := sig.Results().At(i).Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && frozen[named] {
				constructs[named] = true
			}
		}
	}
	report := func(sel *ast.SelectorExpr) {
		named := frozenReceiver(p, sel, frozen)
		if named == nil || constructs[named] {
			return
		}
		if p.Allowed(sel.Pos(), "allow-mutation") {
			return
		}
		p.Reportf(sel.Pos(), "write to field %s of %s, which is published via atomic.Pointer snapshots and must not be mutated outside its constructors (%s does not return %[2]s); move the write into the builder, or annotate with //cws:allow-mutation <reason>",
			sel.Sel.Name, named.Obj().Name(), funcDisplayName(p, fd))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			// Plain and compound assignment, including multi-assign; := never
			// has a selector LHS.
			for _, lhs := range stmt.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					report(sel)
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(stmt.X).(*ast.SelectorExpr); ok {
				report(sel)
			}
		}
		return true
	})
}

// frozenReceiver returns the frozen named type of x in a field write x.f,
// or nil when x's type is not frozen or f is not a field.
func frozenReceiver(p *Pass, sel *ast.SelectorExpr, frozen map[*types.Named]bool) *types.Named {
	if p.fieldOf(sel) == nil {
		return nil
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !frozen[named] {
		return nil
	}
	return named
}

// funcDisplayName renders a function or method the way the hot-path
// manifest and diagnostics name it: Name, T.Name, or (*T).Name.
func funcDisplayName(p *Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	var b strings.Builder
	if star, ok := t.(*ast.StarExpr); ok {
		b.WriteString("(*")
		b.WriteString(typeExprName(star.X))
		b.WriteString(")")
	} else {
		b.WriteString(typeExprName(t))
	}
	b.WriteString(".")
	b.WriteString(fd.Name.Name)
	return b.String()
}

// typeExprName renders a receiver base type expression (Ident or generic
// IndexExpr) as its bare name.
func typeExprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return typeExprName(e.X)
	case *ast.IndexListExpr:
		return typeExprName(e.X)
	default:
		return "?"
	}
}

// Package estimator exercises the chain-flattening check against the
// estimator-selection idiom of the Estimator seam: front ends parse the
// ?est= / -estimator name into a typed *UnknownEstimatorError (mirrored
// here, matching estimate.UnknownEstimatorError) and must wrap it with %w —
// the server's errors.As dispatch (bad name → 400, everything else → 500)
// stops working the moment a front end flattens the chain with %v.
package estimator

import (
	"errors"
	"fmt"
)

// UnknownEstimatorError is the typed parse failure front ends dispatch on
// with errors.As, shaped like estimate.UnknownEstimatorError.
type UnknownEstimatorError struct{ Name string }

func (e *UnknownEstimatorError) Error() string {
	return fmt.Sprintf("unknown estimator %q", e.Name)
}

func parse(name string) error {
	if name != "aw" && name != "discarded" {
		return &UnknownEstimatorError{Name: name}
	}
	return nil
}

// badParamWrap loses the typed error: errors.As upstream stops seeing
// *UnknownEstimatorError, so the server would answer 500 where the client
// deserves a 400.
func badParamWrap(name string) error {
	if err := parse(name); err != nil {
		return fmt.Errorf("bad est parameter: %v", err) // want `flattening its chain`
	}
	return nil
}

// goodParamWrap preserves the chain for errors.As dispatch.
func goodParamWrap(name string) error {
	if err := parse(name); err != nil {
		return fmt.Errorf("bad est parameter: %w", err)
	}
	return nil
}

// statusFor is the consuming side the %w discipline protects.
func statusFor(err error) int {
	var unknown *UnknownEstimatorError
	if errors.As(err, &unknown) {
		return 400
	}
	return 500
}

var _ = statusFor
var _ = goodParamWrap
var _ = badParamWrap

// Package sketch exercises the typederr analyzer's boundary rules (matched
// by package-path suffix, like the real coordsample/internal/sketch):
// errors built in exported functions must be attributable — package-
// prefixed, wrapping with %w, or a documented typed error. Unexported
// helpers are exempt; their callers wrap.
package sketch

import (
	"errors"
	"fmt"
)

func Anonymous() error {
	return errors.New("merge failed") // want `errors.New at the sketch boundary`
}

func Unprefixed(n int) error {
	return fmt.Errorf("bad entry %d", n) // want `without the "sketch: " prefix`
}

func PrefixedOK(n int) error {
	return fmt.Errorf("sketch: bad entry %d", n)
}

func WrappedOK(err error) error {
	return fmt.Errorf("merging shard: %w", err)
}

func AllowedSentinel() error {
	//cws:allow-untyped fixture: historic sentinel message asserted by tests
	return errors.New("legacy message")
}

// ParseDetail wraps its helper's error into boundary-attributable form.
func ParseDetail(line string) error {
	if err := parseLine(line); err != nil {
		return fmt.Errorf("sketch: parsing %q: %w", line, err)
	}
	return nil
}

// parseLine is unexported: its detail errors never cross the boundary bare,
// so the prefix rule does not apply here.
func parseLine(line string) error {
	if line == "" {
		return errors.New("empty line")
	}
	return fmt.Errorf("want 7 fields, have %d", len(line))
}

// Package typederr exercises the typederr analyzer outside the sketch/store
// boundary: the chain-flattening check applies to every package; the
// boundary checks do not.
package typederr

import (
	"errors"
	"fmt"
)

// errBase shows errors.New is unconstrained outside the boundary packages.
var errBase = errors.New("typederr: base failure")

func flattenV(err error) error {
	return fmt.Errorf("load failed: %v", err) // want `flattening its chain`
}

func flattenS(err error) error {
	return fmt.Errorf("load failed: %s", err) // want `flattening its chain`
}

func wrapOK(err error) error {
	return fmt.Errorf("load failed: %w", err)
}

func messageOK(n int) error {
	if n < 0 {
		return errBase
	}
	return fmt.Errorf("bad record %d", n)
}

func allowedRender(err error) error {
	//cws:allow-untyped fixture: log-line rendering, never unwrapped upstream
	return fmt.Errorf("note: %v", err)
}

// Package sketch is a fixture stand-in for coordsample/internal/sketch: the
// analyzer matches bypassing combines by package-path suffix, so this
// package's MergeUnchecked is treated exactly like the real one.
package sketch

// Sketch is a minimal stand-in for the bottom-k summary.
type Sketch struct {
	Entries []uint64
}

// Merge is the fingerprint-checked combine.
func Merge(sketches ...*Sketch) (*Sketch, error) {
	return MergeUnchecked(sketches...), nil
}

// MergeUnchecked is the fingerprint-bypassing combine.
func MergeUnchecked(sketches ...*Sketch) *Sketch {
	out := &Sketch{}
	for _, s := range sketches {
		out.Entries = append(out.Entries, s.Entries...)
	}
	return out
}

// Package uncheckedmerge exercises the uncheckedmerge analyzer: every
// fingerprint-bypassing combine needs a //cws:allow-unchecked reason, checked
// merges and annotated calls pass, and reason-less or stale annotations are
// themselves flagged.
package uncheckedmerge

import (
	"uncheckedmerge/coordsample"
	"uncheckedmerge/sketch"
)

func flagged(a, b *sketch.Sketch) *sketch.Sketch {
	return sketch.MergeUnchecked(a, b) // want `bypasses fingerprint verification`
}

func flaggedFacade(a, b *sketch.Sketch) *sketch.Sketch {
	return coordsample.MergeSketchesUnchecked(a, b) // want `bypasses fingerprint verification`
}

func checkedOK(a, b *sketch.Sketch) (*sketch.Sketch, error) {
	return sketch.Merge(a, b)
}

func allowedLineAbove(a, b *sketch.Sketch) *sketch.Sketch {
	//cws:allow-unchecked fixture: both inputs built by one constructor above
	return sketch.MergeUnchecked(a, b)
}

func allowedSameLine(a, b *sketch.Sketch) *sketch.Sketch {
	return sketch.MergeUnchecked(a, b) //cws:allow-unchecked fixture: same-line form
}

func reasonless(a, b *sketch.Sketch) *sketch.Sketch {
	//cws:allow-unchecked // want `needs a reason`
	return sketch.MergeUnchecked(a, b) // want `bypasses fingerprint verification`
}

func stale(a, b *sketch.Sketch) (*sketch.Sketch, error) {
	//cws:allow-unchecked fixture: this merge became checked later // want `stale //cws:allow-unchecked`
	return sketch.Merge(a, b)
}

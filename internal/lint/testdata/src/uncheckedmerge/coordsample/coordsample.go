// Package coordsample is a fixture stand-in for the module facade and its
// MergeSketchesUnchecked re-export.
package coordsample

import "uncheckedmerge/sketch"

// MergeSketchesUnchecked mirrors the facade's fingerprint-bypassing combine.
func MergeSketchesUnchecked(sketches ...*sketch.Sketch) *sketch.Sketch {
	return sketch.MergeUnchecked(sketches...)
}

// Package hotpath exercises the hotpath analyzer: //cws:hotpath functions
// and their package-local callees reject alloc-prone constructs, mutexes,
// and sends on hot branches; cold (terminating) branches relax everything
// except defer and go.
package hotpath

import (
	"fmt"
	"sync"
)

type sketch struct {
	entries []uint64
	mu      sync.Mutex
	out     chan uint64
	err     error
}

//cws:hotpath
func (s *sketch) Offer(key []byte, rank uint64) {
	if rank == 0 {
		// Cold branch: it terminates in return, so the append is exempt.
		s.entries = append(s.entries, encode(key))
		return
	}
	s.push(rank)
}

// push is reached from Offer through a static call, so it is hot without an
// annotation of its own.
func (s *sketch) push(rank uint64) {
	s.entries = append(s.entries, rank) // want `append`
	//cws:allow-alloc fixture: amortized growth of a pooled buffer
	s.entries = append(s.entries, rank)
}

//cws:hotpath
func (s *sketch) flush() {
	s.mu.Lock()   // want `mutex Mutex.Lock`
	s.out <- 1    // want `channel send`
	s.mu.Unlock() // want `mutex Mutex.Unlock`
}

//cws:hotpath
func (s *sketch) describe(key []byte) {
	name := string(key)            // want `string/\[\]byte conversion`
	s.err = fmt.Errorf("%s", name) // want `call to fmt.Errorf` `argument boxed into interface parameter`
	if name == "" {
		defer s.flush() // want `defer`
		return
	}
	f := func() {} // want `closure allocation`
	f()
	m := map[string]int{} // want `map literal`
	_ = m
	b := make([]byte, 8) // want `make`
	_ = b
}

func encode(key []byte) uint64 {
	return uint64(len(key))
}

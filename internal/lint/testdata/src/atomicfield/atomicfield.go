// Package atomicfield exercises the atomicfield analyzer: a field whose
// address reaches sync/atomic anywhere must be accessed atomically
// everywhere; fields never touched atomically are unconstrained.
package atomicfield

import "sync/atomic"

type counter struct {
	hits uint64
	name string
}

func (c *counter) inc() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counter) load() uint64 {
	return atomic.LoadUint64(&c.hits)
}

func (c *counter) racyRead() uint64 {
	return c.hits // want `non-atomic access to field hits`
}

func (c *counter) racyWrite() {
	c.hits = 0 // want `non-atomic access to field hits`
}

func (c *counter) nameOK() string {
	return c.name
}

func (c *counter) allowed() uint64 {
	//cws:allow-nonatomic fixture: called before the counter is shared
	return c.hits
}

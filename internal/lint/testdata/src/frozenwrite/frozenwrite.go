// Package frozenwrite exercises the frozenwrite analyzer: types published
// through atomic.Pointer (snapshot) or annotated //cws:frozen (rangeState)
// accept field writes only in functions that return them.
package frozenwrite

import "sync/atomic"

type snapshot struct {
	total  int
	window int
}

//cws:frozen
type rangeState struct {
	lo, hi int
}

type server struct {
	snap atomic.Pointer[snapshot]
}

func newSnapshot(total int) *snapshot {
	s := &snapshot{}
	s.total = total
	return s
}

func freeze(sv *server, s *snapshot) {
	s.window++ // want `write to field window of snapshot`
	sv.snap.Store(s)
}

func patchRange(r *rangeState) {
	r.hi = 9 // want `write to field hi of rangeState`
}

func buildRange(lo int) *rangeState {
	r := new(rangeState)
	r.lo = lo
	return r
}

func allowedMutation(s *snapshot) {
	//cws:allow-mutation fixture: this path runs before publication
	s.total = 0
}

func readOK(sv *server) int {
	return sv.snap.Load().total
}

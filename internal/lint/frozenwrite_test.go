package lint_test

import (
	"testing"

	"coordsample/internal/lint"
	"coordsample/internal/lint/linttest"
)

func TestFrozenWrite(t *testing.T) {
	linttest.Run(t, lint.FrozenWrite, "frozenwrite")
}

package lint_test

import (
	"testing"

	"coordsample/internal/lint"
	"coordsample/internal/lint/linttest"
)

func TestTypedErrFlattening(t *testing.T) {
	linttest.Run(t, lint.TypedErr, "typederr")
}

func TestTypedErrBoundary(t *testing.T) {
	linttest.Run(t, lint.TypedErr, "typederr/sketch")
}

// The estimator-selection idiom added with the Estimator seam: typed
// *UnknownEstimatorError parse failures must cross front-end wrapping with
// their chain intact.
func TestTypedErrEstimatorSeam(t *testing.T) {
	linttest.Run(t, lint.TypedErr, "typederr/estimator")
}

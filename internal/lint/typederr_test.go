package lint_test

import (
	"testing"

	"coordsample/internal/lint"
	"coordsample/internal/lint/linttest"
)

func TestTypedErrFlattening(t *testing.T) {
	linttest.Run(t, lint.TypedErr, "typederr")
}

func TestTypedErrBoundary(t *testing.T) {
	linttest.Run(t, lint.TypedErr, "typederr/sketch")
}

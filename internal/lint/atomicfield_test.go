package lint_test

import (
	"testing"

	"coordsample/internal/lint"
	"coordsample/internal/lint/linttest"
)

func TestAtomicField(t *testing.T) {
	linttest.Run(t, lint.AtomicField, "atomicfield")
}

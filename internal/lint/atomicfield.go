package lint

import (
	"go/ast"
	"go/types"
)

// AtomicField catches mixed atomic/non-atomic access to struct fields.
//
// A field whose address is passed to a sync/atomic function anywhere in the
// package is an atomic field: every other access to it must also be atomic,
// or the two access disciplines race — the class of bug the race detector
// only reports when the scheduler happens to interleave them (the PR-4
// admission-threshold design notes lean on exactly this discipline). The
// analyzer flags any plain read, write, or address-taking of such a field
// outside a sync/atomic call. Composite-literal keys are exempt
// (initialization before the value is shared); anything else needs a
//
//	//cws:allow-nonatomic <reason>
//
// annotation. Fields declared with the atomic.Int64/Uint64/Pointer/... types
// need no checking — their method set makes non-atomic access inexpressible,
// which is why the repository prefers them (sketch.BottomKBuilder.admission,
// server.Server.snap).
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "flag non-atomic access to struct fields that are accessed with sync/atomic elsewhere",
	Run:  runAtomicField,
}

func runAtomicField(p *Pass) {
	// Pass 1: find the atomic fields — field objects whose address is an
	// argument to a sync/atomic function — and remember the exact
	// SelectorExpr nodes already inside atomic calls.
	atomicFields := make(map[*types.Var]bool)
	inAtomicCall := make(map[*ast.SelectorExpr]bool)
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.callee(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || unary.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if field := p.fieldOf(sel); field != nil {
					atomicFields[field] = true
					inAtomicCall[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		p.CheckDirectives("allow-nonatomic")
		return
	}

	// Pass 2: every other access to an atomic field is a violation.
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := p.fieldOf(sel)
			if field == nil || !atomicFields[field] || inAtomicCall[sel] {
				return true
			}
			if p.Allowed(sel.Pos(), "allow-nonatomic") {
				return true
			}
			p.Reportf(sel.Pos(), "non-atomic access to field %s, which is accessed with sync/atomic elsewhere in this package: mixed access races with the atomic users; use sync/atomic here too, or annotate with //cws:allow-nonatomic <reason>", field.Name())
			return true
		})
	}
	p.CheckDirectives("allow-nonatomic")
}

// fieldOf resolves a selector expression to the struct field it selects, or
// nil when it selects something else (a method, a package member).
func (p *Pass) fieldOf(sel *ast.SelectorExpr) *types.Var {
	selection, ok := p.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	field, _ := selection.Obj().(*types.Var)
	return field
}

// Package linttest is the fixture harness for the cws-vet analyzers: a
// stdlib-only analogue of golang.org/x/tools' analysistest. A test points it
// at a package under testdata/src; the harness type-checks the fixture with
// lint.Loader, runs one analyzer, and checks the diagnostics against
//
//	// want "regexp" "regexp"...
//
// comments in the fixture source: every diagnostic must match a want on its
// line, and every want must be matched by a diagnostic. Fixtures therefore
// document each analyzer's flagged AND allowed forms in the same file — the
// allowed forms are simply the lines without a want.
package linttest

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"coordsample/internal/lint"
)

// Run loads testdata/src/<path> (relative to the test's working directory),
// runs the analyzer over it, and reports mismatches against the fixture's
// want comments.
func Run(t *testing.T, a *lint.Analyzer, path string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("resolving testdata root: %v", err)
	}
	loader := lint.NewLoader(func(importPath string) (string, bool) {
		dir := filepath.Join(root, filepath.FromSlash(importPath))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
		return "", false
	})
	pkg, err := loader.Load(path)
	if err != nil {
		t.Fatalf("loading fixture %q: %v", path, err)
	}

	var got []lint.Diagnostic
	pass := lint.NewPass(a, loader.Fset, pkg.Files, pkg.Pkg, pkg.Info, func(d lint.Diagnostic) {
		got = append(got, d)
	})
	a.Run(pass)

	wants := collectWants(t, loader, pkg.Files)
	for _, d := range got {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if !claim(wants[key], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", key, w.re.String())
			}
		}
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	re      *regexp.Regexp
	matched bool
}

// claim marks the first unmatched want whose pattern matches the message.
func claim(ws []*want, message string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every `// want "..."` comment, keyed by file:line.
func collectWants(t *testing.T, loader *lint.Loader, files []*ast.File) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, file := range files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				// A want may be the whole comment or share a //cws:
				// directive's comment (the directive parser strips it from
				// the reason).
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				rest := c.Text[i+len("// want "):]
				pos := loader.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for {
					rest = strings.TrimSpace(rest)
					if rest == "" {
						break
					}
					quoted, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want comment %q: %v", key, c.Text, err)
					}
					pattern, err := strconv.Unquote(quoted)
					if err != nil {
						t.Fatalf("%s: unquoting %q: %v", key, quoted, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pattern, err)
					}
					wants[key] = append(wants[key], &want{re: re})
					rest = rest[len(quoted):]
				}
			}
		}
	}
	return wants
}

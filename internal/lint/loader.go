package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Loader parses and type-checks packages from source, resolving imports
// without any network or pre-built export data: module and fixture packages
// through the caller's Resolve hook, everything else from GOROOT source via
// go/build (with cgo disabled, so packages like net select their pure-Go
// variants). It backs both cws-vet's standalone mode and the linttest
// fixture harness; the go vet -vettool unit mode reads compiler export data
// instead and does not use it.
type Loader struct {
	Fset *token.FileSet
	// Resolve maps an import path to the directory holding its source, for
	// packages go/build cannot find (module-internal packages, testdata
	// fixtures). Returning ok=false falls back to go/build.
	Resolve func(path string) (dir string, ok bool)

	ctxt build.Context
	pkgs map[string]*Package
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	err   error
}

// NewLoader returns a loader with an empty cache.
func NewLoader(resolve func(string) (string, bool)) *Loader {
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &Loader{
		Fset:    token.NewFileSet(),
		Resolve: resolve,
		ctxt:    ctxt,
		pkgs:    make(map[string]*Package),
	}
}

// Import implements types.Importer over the loader's cache.
func (l *Loader) Import(path string) (*types.Package, error) {
	p, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	return p.Pkg, nil
}

// Load returns the type-checked package for an import path, loading it and
// its dependencies on first use.
func (l *Loader) Load(path string) (*Package, error) {
	if path == "unsafe" {
		return &Package{Path: path, Pkg: types.Unsafe}, nil
	}
	if p, ok := l.pkgs[path]; ok {
		if p.Pkg == nil && p.err == nil {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
		return p, p.err
	}
	placeholder := &Package{Path: path}
	l.pkgs[path] = placeholder

	dir, err := l.dirFor(path)
	if err != nil {
		placeholder.err = err
		return nil, err
	}
	p, err := l.LoadDir(path, dir)
	if err != nil {
		placeholder.err = err
		return nil, err
	}
	*placeholder = *p
	return placeholder, nil
}

func (l *Loader) dirFor(path string) (string, error) {
	if l.Resolve != nil {
		if dir, ok := l.Resolve(path); ok {
			return dir, nil
		}
	}
	bp, err := l.ctxt.Import(path, "", build.FindOnly)
	if err != nil {
		return "", fmt.Errorf("lint: resolving import %q: %w", path, err)
	}
	return bp.Dir, nil
}

// LoadDir parses and type-checks the (non-test) Go files of one directory as
// the package with the given import path.
func (l *Loader) LoadDir(path, dir string) (*Package, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: reading package %q in %s: %w", path, dir, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := &types.Config{
		Importer: l,
		// Dependency sources may use newer language features than the
		// module's go directive; leave GoVersion unset (no restriction).
		Error: nil,
	}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %q: %w", path, err)
	}
	return &Package{Path: path, Files: files, Pkg: pkg, Info: info}, nil
}

// NewInfo allocates the types.Info maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// ModuleResolver returns a Resolve hook mapping import paths under the
// given module path to directories under root.
func ModuleResolver(modulePath, root string) func(string) (string, bool) {
	return func(path string) (string, bool) {
		if path == modulePath {
			return root, true
		}
		if rest, ok := strings.CutPrefix(path, modulePath+"/"); ok {
			return filepath.Join(root, filepath.FromSlash(rest)), true
		}
		return "", false
	}
}

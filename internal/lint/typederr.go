package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// TypedErr keeps the typed-error contract of the sketch and store package
// boundaries honest.
//
// PR 2 and PR 5 made combination and corruption failures *typed*
// (*FingerprintMismatchError, *CoordinationMismatchError,
// *CorruptSegmentError, store.*CorruptError, ...), so callers dispatch with
// errors.As instead of string matching — the server maps fingerprint
// mismatches to 409 and persist failures to 500 this way. Two things erode
// that contract silently, and this analyzer flags both:
//
//  1. Chain flattening, in every package: fmt.Errorf("...: %v", err) (or
//     %s) renders an error into the message and discards its chain, so an
//     errors.As/Is caller upstream stops seeing the typed error. Wrapping
//     must use %w.
//  2. Anonymous boundary errors, in the sketch and store packages: an
//     error built in an exported function or at package scope without a
//     chain (errors.New, or fmt.Errorf without %w) must carry the
//     "sketch: "/"store: " package prefix that makes it attributable at the
//     boundary — plain errors are built with fmt.Errorf so they carry
//     context, and dispatchable failures are the documented typed errors.
//     Unexported helpers are exempt: their errors are internal detail the
//     boundary functions wrap (store's manifest parser feeds CorruptError's
//     Detail field, for example) and never cross the boundary bare.
//
// Deliberate flattening (rendering an error for a human, never to be
// unwrapped) is annotated //cws:allow-untyped <reason>.
var TypedErr = &Analyzer{
	Name: "typederr",
	Doc:  "flag error-chain flattening (%v of an error in fmt.Errorf) and unattributable sketch/store boundary errors",
	Run:  runTypedErr,
}

// typedErrBoundaries are the packages whose error constructors get the
// boundary checks (rule 2).
var typedErrBoundaries = []string{"internal/sketch", "internal/store"}

func runTypedErr(p *Pass) {
	boundary := false
	for _, suffix := range typedErrBoundaries {
		if pkgPathIs(p.Pkg, suffix) {
			boundary = true
		}
	}
	prefix := p.Pkg.Name() + ": "
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			// The boundary rules apply where errors actually cross the
			// boundary: exported functions and package-scope sentinels.
			// Unexported helpers' errors are wrapped by their callers.
			atBoundary := boundary
			if fd, ok := decl.(*ast.FuncDecl); ok {
				atBoundary = boundary && fd.Name.IsExported()
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := p.callee(call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch {
				case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
					p.checkErrorf(call, atBoundary, prefix)
				case atBoundary && fn.Pkg().Path() == "errors" && fn.Name() == "New":
					if !p.Allowed(call.Pos(), "allow-untyped") {
						p.Reportf(call.Pos(), "errors.New at the %s boundary: callers dispatch on this package's documented typed errors; define one (or build the message with fmt.Errorf so it carries context), or annotate with //cws:allow-untyped <reason>", p.Pkg.Name())
					}
				}
				return true
			})
		}
	}
	p.CheckDirectives("allow-untyped")
}

// checkErrorf applies the chain-flattening check (everywhere) and the
// boundary-prefix check (sketch/store) to one fmt.Errorf call.
func (p *Pass) checkErrorf(call *ast.CallExpr, boundary bool, prefix string) {
	if len(call.Args) == 0 {
		return
	}
	format, ok := p.stringConstant(call.Args[0])
	if !ok {
		return // dynamic format string; nothing to analyze
	}
	verbs, exotic := formatVerbs(format)
	if exotic {
		return // explicit argument indexes etc.; stay silent rather than guess
	}
	wraps := false
	for i, verb := range verbs {
		argIndex := i + 1
		if verb == 'w' {
			wraps = true
			continue
		}
		if verb != 'v' && verb != 's' {
			continue
		}
		if argIndex >= len(call.Args) {
			continue // malformed call; vet's printf check owns that
		}
		arg := call.Args[argIndex]
		if !p.isErrorTyped(arg) {
			continue
		}
		if p.Allowed(arg.Pos(), "allow-untyped") {
			continue
		}
		p.Reportf(arg.Pos(), "fmt.Errorf formats an error with %%%c, flattening its chain: errors.Is/As callers stop seeing typed errors through this wrap; use %%w, or annotate with //cws:allow-untyped <reason>", verb)
	}
	if boundary && !wraps && !strings.HasPrefix(format, prefix) {
		if !p.Allowed(call.Pos(), "allow-untyped") {
			p.Reportf(call.Pos(), "error built at the %s boundary without the %q prefix: boundary errors must be attributable (or wrap an inner error with %%w); add the prefix, or annotate with //cws:allow-untyped <reason>", p.Pkg.Name(), prefix)
		}
	}
}

// stringConstant returns the constant string value of an expression.
func (p *Pass) stringConstant(e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isErrorTyped reports whether an expression's static type is error (or any
// concrete type implementing it) — the arguments whose chain %v would drop.
func (p *Pass) isErrorTyped(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.Value != nil {
		return false // constants are never errors worth chaining
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(tv.Type, errType) || types.Implements(types.NewPointer(tv.Type), errType)
}

// formatVerbs extracts the verb letters of a printf format string in
// argument order. exotic is true for features the simple scanner does not
// model (explicit argument indexes, * width/precision), in which case the
// caller skips the check.
func formatVerbs(format string) (verbs []byte, exotic bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// Skip flags, width, and precision.
		for i < len(format) {
			c := format[i]
			if c == '[' {
				return nil, true // explicit argument index
			}
			if c == '*' {
				return nil, true // width/precision consumes an argument
			}
			if strings.ContainsRune("+-# 0123456789.", rune(c)) {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs, false
}

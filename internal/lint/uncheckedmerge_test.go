package lint_test

import (
	"testing"

	"coordsample/internal/lint"
	"coordsample/internal/lint/linttest"
)

func TestUncheckedMerge(t *testing.T) {
	linttest.Run(t, lint.UncheckedMerge, "uncheckedmerge")
}

package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //cws: directive vocabulary. Directives are ordinary line comments of
// the form
//
//	//cws:NAME reason...
//
// with no space between // and cws: (the Go directive convention, so gofmt
// never reflows them and godoc never renders them).
//
// Two directives mark declarations and are read from doc comments:
//
//	//cws:hotpath   on a function: the zero-alloc ingest contract applies
//	//cws:frozen    on a type: published-snapshot immutability applies
//
// Five directives silence one analyzer at one line — the line of the
// flagged construct or the line immediately above it — and every one of
// them REQUIRES a reason, which is what turns an escape hatch into an
// audited allowlist:
//
//	//cws:allow-unchecked reason   (uncheckedmerge)
//	//cws:allow-alloc reason       (hotpath)
//	//cws:allow-nonatomic reason   (atomicfield)
//	//cws:allow-mutation reason    (frozenwrite)
//	//cws:allow-untyped reason     (typederr)
const directivePrefix = "//cws:"

// directive is one parsed //cws: comment.
type directive struct {
	name   string // e.g. "hotpath", "allow-unchecked"
	reason string // text after the name; may be empty
	pos    token.Pos
	line   int
	used   bool // an analyzer consumed it (stale-annotation detection)
}

// annotations indexes every //cws: directive of a package by file line.
type annotations struct {
	fset   *token.FileSet
	byLine map[string][]*directive // "filename:line" -> directives
	all    []*directive
}

// parseDirective splits a comment into a //cws: directive, if it is one.
func parseDirective(c *ast.Comment) (name, reason string, ok bool) {
	text := c.Text
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	name, reason, _ = strings.Cut(rest, " ")
	// A linttest want expectation sharing the directive's comment is not
	// part of the reason.
	if i := strings.Index(reason, "// want "); i >= 0 {
		reason = reason[:i]
	}
	return strings.TrimSpace(name), strings.TrimSpace(reason), name != ""
}

// Annotations builds (once) and returns the package's directive index.
func (p *Pass) Annotations() *annotations {
	if p.annotations != nil {
		return p.annotations
	}
	a := &annotations{fset: p.Fset, byLine: make(map[string][]*directive)}
	for _, file := range p.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				name, reason, ok := parseDirective(c)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				d := &directive{name: name, reason: reason, pos: c.Pos(), line: pos.Line}
				key := lineKey(pos.Filename, pos.Line)
				a.byLine[key] = append(a.byLine[key], d)
				a.all = append(a.all, d)
			}
		}
	}
	p.annotations = a
	return a
}

func lineKey(filename string, line int) string {
	return filename + ":" + itoa(line)
}

// itoa avoids strconv just for line keys.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// at returns the directives with the given name on the line of pos or the
// line immediately above it.
func (a *annotations) at(pos token.Pos, name string) *directive {
	position := a.fset.Position(pos)
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, d := range a.byLine[lineKey(position.Filename, line)] {
			if d.name == name {
				return d
			}
		}
	}
	return nil
}

// Allowed reports whether an allow-directive with the given name covers pos,
// marking it used. A directive present but missing its reason does not
// silence the diagnostic; the caller reports the missing reason instead via
// CheckDirectives.
func (p *Pass) Allowed(pos token.Pos, name string) bool {
	d := p.Annotations().at(pos, name)
	if d == nil {
		return false
	}
	d.used = true
	return d.reason != ""
}

// FuncAnnotated reports whether fn's declaration carries the named
// declaration directive (in its doc comment or on the line above the
// declaration), marking it used.
func (p *Pass) FuncAnnotated(fd *ast.FuncDecl, name string) bool {
	return p.declAnnotated(fd.Doc, fd.Pos(), name)
}

// TypeAnnotated reports whether a type declaration carries the named
// directive. The doc comment may hang on the GenDecl (single-spec decls) or
// the TypeSpec.
func (p *Pass) TypeAnnotated(gd *ast.GenDecl, spec *ast.TypeSpec, name string) bool {
	if p.declAnnotated(spec.Doc, spec.Pos(), name) {
		return true
	}
	return gd != nil && p.declAnnotated(gd.Doc, gd.Pos(), name)
}

func (p *Pass) declAnnotated(doc *ast.CommentGroup, declPos token.Pos, name string) bool {
	ann := p.Annotations()
	if doc != nil {
		for _, c := range doc.List {
			if n, _, ok := parseDirective(c); ok && n == name {
				if d := ann.at(c.Pos(), name); d != nil {
					d.used = true
				}
				return true
			}
		}
	}
	if d := ann.at(declPos, name); d != nil {
		d.used = true
		return true
	}
	return false
}

// CheckDirectives reports directives owned by this analyzer that are
// malformed (an allow-directive without a reason) or stale (an
// allow-directive that silenced nothing). Analyzers call it last, passing
// the directive names they own; each directive has exactly one owner, so
// the suite reports each problem once.
func (p *Pass) CheckDirectives(owned ...string) {
	isOwned := func(name string) bool {
		for _, o := range owned {
			if o == name {
				return true
			}
		}
		return false
	}
	for _, d := range p.Annotations().all {
		if !isOwned(d.name) {
			continue
		}
		if strings.HasPrefix(d.name, "allow-") {
			if d.reason == "" {
				p.Reportf(d.pos, "//cws:%s needs a reason: the annotation is an audited allowlist entry, not a mute button", d.name)
				continue
			}
			if !d.used {
				p.Reportf(d.pos, "stale //cws:%s annotation: nothing on this line (or the line below) is flagged by %s anymore; delete it", d.name, p.Analyzer.Name)
			}
		}
	}
}

// Package csvio reads and writes the CSV interchange format shared by the
// command-line tools: a header "key,<assignment>,<assignment>,..." followed
// by one row per key with its weight in each assignment. It exists so the
// format logic is tested once and the binaries stay thin.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"coordsample/internal/dataset"
)

// Header is the mandatory first column name.
const Header = "key"

// Row is one parsed record: a key and its per-assignment weights.
type Row struct {
	Key     string
	Weights []float64
}

// Reader streams rows from a dataset CSV.
type Reader struct {
	cr    *csv.Reader
	names []string
	line  int
}

// NewReader parses the header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: reading header: %w", err)
	}
	if len(header) < 2 || header[0] != Header {
		return nil, fmt.Errorf("csvio: header must be %q,<assignment>,...; got %v", Header, header)
	}
	return &Reader{cr: cr, names: append([]string(nil), header[1:]...), line: 1}, nil
}

// AssignmentNames returns the assignment labels from the header.
func (r *Reader) AssignmentNames() []string { return r.names }

// Next returns the next row, or io.EOF at the end of input. The returned
// Row's Weights slice is reused across calls; copy it to retain.
func (r *Reader) Next() (Row, error) {
	rec, err := r.cr.Read()
	if err == io.EOF {
		return Row{}, io.EOF
	}
	if err != nil {
		return Row{}, fmt.Errorf("csvio: line %d: %w", r.line+1, err)
	}
	r.line++
	if len(rec) != len(r.names)+1 {
		return Row{}, fmt.Errorf("csvio: line %d: %d fields, want %d", r.line, len(rec), len(r.names)+1)
	}
	row := Row{Key: rec[0], Weights: make([]float64, len(r.names))}
	for b := range r.names {
		w, err := strconv.ParseFloat(rec[b+1], 64)
		if err != nil {
			return Row{}, fmt.Errorf("csvio: line %d: bad weight %q: %w", r.line, rec[b+1], err)
		}
		if w < 0 {
			return Row{}, fmt.Errorf("csvio: line %d: negative weight %v", r.line, w)
		}
		row.Weights[b] = w
	}
	return row, nil
}

// ReadDataset materializes an entire CSV into a Dataset. Duplicate keys
// accumulate, matching the aggregation semantics of dataset.Builder.
func ReadDataset(r io.Reader) (*dataset.Dataset, error) {
	cr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	bld := dataset.NewBuilder(cr.AssignmentNames()...)
	for {
		row, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for b, w := range row.Weights {
			if w > 0 {
				bld.Add(b, row.Key, w)
			}
		}
	}
	return bld.Build(), nil
}

// WriteDataset emits a Dataset in the interchange format.
func WriteDataset(w io.Writer, ds *dataset.Dataset) error {
	cw := csv.NewWriter(w)
	header := append([]string{Header}, ds.AssignmentNames()...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("csvio: %w", err)
	}
	rec := make([]string, ds.NumAssignments()+1)
	for i := 0; i < ds.NumKeys(); i++ {
		rec[0] = ds.Key(i)
		for b := 0; b < ds.NumAssignments(); b++ {
			rec[b+1] = strconv.FormatFloat(ds.Weight(b, i), 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("csvio: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("csvio: %w", err)
	}
	return nil
}

package csvio

import (
	"io"
	"math/rand"
	"strings"
	"testing"

	"coordsample/internal/dataset"
)

func TestRoundTrip(t *testing.T) {
	bld := dataset.NewBuilder("bytes", "packets")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		key := "key-" + itoa(i)
		if rng.Float64() < 0.8 {
			bld.Add(0, key, float64(rng.Intn(100000)))
		}
		if rng.Float64() < 0.8 {
			bld.Add(1, key, float64(rng.Intn(1000)))
		}
	}
	ds := bld.Build()

	var sb strings.Builder
	if err := WriteDataset(&sb, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDataset(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumAssignments() != 2 {
		t.Fatalf("assignments = %d", back.NumAssignments())
	}
	names := back.AssignmentNames()
	if names[0] != "bytes" || names[1] != "packets" {
		t.Fatalf("names = %v", names)
	}
	for i := 0; i < ds.NumKeys(); i++ {
		key := ds.Key(i)
		for b := 0; b < 2; b++ {
			if got, want := back.WeightByKey(b, key), ds.Weight(b, i); got != want {
				t.Fatalf("%s b=%d: %v != %v", key, b, got, want)
			}
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func TestReaderStreaming(t *testing.T) {
	in := "key,a,b\nx,1,2\ny,3,0\n"
	r, err := NewReader(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.AssignmentNames(); len(got) != 2 || got[0] != "a" {
		t.Fatalf("names = %v", got)
	}
	row, err := r.Next()
	if err != nil || row.Key != "x" || row.Weights[0] != 1 || row.Weights[1] != 2 {
		t.Fatalf("row1 = %+v, %v", row, err)
	}
	row, err = r.Next()
	if err != nil || row.Key != "y" || row.Weights[1] != 0 {
		t.Fatalf("row2 = %+v, %v", row, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "id,a\nx,1\n"},
		{"single column", "key\nx\n"},
		{"field count", "key,a,b\nx,1\n"},
		{"bad weight", "key,a\nx,zzz\n"},
		{"negative weight", "key,a\nx,-5\n"},
	}
	for _, c := range cases {
		_, err := ReadDataset(strings.NewReader(c.in))
		if err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
	}
}

func TestDuplicateKeysAccumulate(t *testing.T) {
	ds, err := ReadDataset(strings.NewReader("key,a\nx,1\nx,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.WeightByKey(0, "x"); got != 3 {
		t.Fatalf("accumulated = %v, want 3", got)
	}
}

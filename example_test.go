package coordsample_test

import (
	"fmt"

	"coordsample"
)

// ExampleCombineDispersed reproduces the paper's Figure 1 worked example
// through the public API: a six-key weighted set sampled with IPPS ranks.
// The published seeds are injected by building the dataset and using the
// summary on the whole set (k larger than the data makes the estimate
// exact, demonstrating the AW-summary contract).
func ExampleCombineDispersed() {
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 1, K: 8}
	s := coordsample.NewAssignmentSketcher(cfg, 0)
	weights := map[string]float64{"i1": 20, "i2": 10, "i3": 12, "i4": 20, "i5": 10, "i6": 10}
	for key, w := range weights {
		s.Offer(key, w)
	}
	sum, err := coordsample.CombineDispersed(cfg, []*coordsample.BottomK{s.Sketch()})
	if err != nil {
		panic(err)
	}
	// k ≥ |I| ⇒ the estimate is exact: 82.
	fmt.Printf("%.0f\n", sum.Single(0).Estimate(nil))
	// Subpopulation J = {i2, i4, i6} has weight 40.
	J := func(key string) bool { return key == "i2" || key == "i4" || key == "i6" }
	fmt.Printf("%.0f\n", sum.Single(0).Estimate(J))
	// Output:
	// 82
	// 40
}

// ExampleColocated shows the colocated pipeline on the Figure 2 data set:
// three weight assignments over six keys, queried for the example
// aggregates computed in Section 4 of the paper.
func ExampleColocated() {
	b := coordsample.NewDatasetBuilder("w1", "w2", "w3")
	keys := []string{"i1", "i2", "i3", "i4", "i5", "i6"}
	cols := [][]float64{
		{15, 0, 10, 5, 10, 10},
		{20, 10, 12, 20, 0, 10},
		{10, 15, 15, 0, 15, 10},
	}
	for a := range cols {
		for i, key := range keys {
			if cols[a][i] > 0 {
				b.Add(a, key, cols[a][i])
			}
		}
	}
	ds := b.Build()
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 3, K: 8}
	summary := coordsample.SummarizeColocated(cfg, ds)

	// "The max dominance norm over even keys and R = {1,2,3} is 45."
	even := func(key string) bool { return key == "i2" || key == "i4" || key == "i6" }
	fmt.Printf("%.0f\n", summary.Inclusive(coordsample.MaxOf()).Estimate(even))
	// "The L1 distance between assignments R = {2,3} over keys i1,i2,i3 is 18."
	first3 := func(key string) bool { return key == "i1" || key == "i2" || key == "i3" }
	fmt.Printf("%.0f\n", summary.Inclusive(coordsample.RangeOf(1, 2)).Estimate(first3))
	// Output:
	// 45
	// 18
}

// ExamplePoissonTau sizes a Poisson sketch: for the Figure 1 weights
// (total 82, no saturation) the threshold for expected size 1 is 1/82.
func ExamplePoissonTau() {
	weights := []float64{20, 10, 12, 20, 10, 10}
	tau := coordsample.PoissonTau(coordsample.IPPS, weights, 1)
	fmt.Printf("%.5f\n", tau)
	// Output:
	// 0.01220
}

// ExampleSummarizeDispersed shows the main query entry point end to end:
// summarize an in-memory two-period dataset through the dispersed
// pipeline, then ask single- and multiple-assignment subpopulation
// questions of the one summary. With k ≥ |I| every estimate is exact,
// making the AW-summary contract visible: Σ w1, max-dominance, and the L1
// change between the periods.
func ExampleSummarizeDispersed() {
	b := coordsample.NewDatasetBuilder("yesterday", "today")
	for key, w := range map[string][2]float64{
		"alpha": {10, 14}, "beta": {6, 2}, "gamma": {0, 5}, "delta": {3, 3},
	} {
		if w[0] > 0 {
			b.Add(0, key, w[0])
		}
		if w[1] > 0 {
			b.Add(1, key, w[1])
		}
	}
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 1, K: 16}
	summary := coordsample.SummarizeDispersed(cfg, b.Build())

	fmt.Printf("yesterday total: %.0f\n", summary.Single(0).Estimate(nil))
	fmt.Printf("max-dominance:   %.0f\n", summary.Max(nil).Estimate(nil))
	fmt.Printf("change (L1):     %.0f\n", summary.RangeLSet(nil).Estimate(nil))
	// A predicate chosen after summarization selects a subpopulation.
	notDelta := func(key string) bool { return key != "delta" }
	fmt.Printf("change w/o delta: %.0f\n", summary.RangeLSet(nil).Estimate(notDelta))
	// Output:
	// yesterday total: 19
	// max-dominance:   28
	// change (L1):     13
	// change w/o delta: 13
}

// ExampleMergeSketches shows the distributed pattern the merge lemma
// enables: two sites sketch disjoint shards of one assignment under the
// same Config, and the verified merge is the exact bottom-k sketch of the
// union — here with k ≥ |I|, the exact total proves it.
func ExampleMergeSketches() {
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 9, K: 8}
	siteA := coordsample.NewAssignmentSketcher(cfg, 0)
	siteB := coordsample.NewAssignmentSketcher(cfg, 0)
	siteA.Offer("a1", 4)
	siteA.Offer("a2", 6)
	siteB.Offer("b1", 5)

	merged, err := coordsample.MergeSketches(siteA.Sketch(), siteB.Sketch())
	if err != nil {
		panic(err) // different Config at one site ⇒ *FingerprintMismatchError
	}
	sum, err := coordsample.CombineDispersed(cfg, []*coordsample.BottomK{merged})
	if err != nil {
		panic(err)
	}
	fmt.Printf("union total: %.0f from %d keys\n", sum.Single(0).Estimate(nil), merged.Size())
	// Output:
	// union total: 15 from 3 keys
}

// ExampleAWSummary_EstimateWithStdErr queries with an error bar: the
// per-key variance estimates carried by every AW-summary sum to an
// estimated standard error alongside the point estimate. With k ≥ |I| the
// sample is the whole set, so the estimate is exact and the error is 0.
func ExampleAWSummary_EstimateWithStdErr() {
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 2, K: 8}
	s := coordsample.NewAssignmentSketcher(cfg, 0)
	for key, w := range map[string]float64{"x": 7, "y": 1, "z": 4} {
		s.Offer(key, w)
	}
	sum, err := coordsample.CombineDispersed(cfg, []*coordsample.BottomK{s.Sketch()})
	if err != nil {
		panic(err)
	}
	est, stderr := sum.Single(0).EstimateWithStdErr(nil)
	fmt.Printf("%.0f ± %.0f\n", est, stderr)
	// Output:
	// 12 ± 0
}

// ExampleParseEstimator selects an estimator family by name — the same
// parsing behind the server's GET /query?est= parameter and the CLIs'
// -estimator flag — and answers a cross-assignment total with it. With
// k ≥ |I| both families are exact, demonstrating that they answer the
// same aggregates through one interface; on sketches smaller than the
// data they differ, with the discarded family leveraging samples the
// classic union-threshold conditioning throws away (arXiv:0903.0625).
func ExampleParseEstimator() {
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 1, K: 8}
	a := coordsample.NewAssignmentSketcher(cfg, 0)
	b := coordsample.NewAssignmentSketcher(cfg, 1)
	a.Offer("x", 3)
	a.Offer("y", 2) // y appears only in assignment 0
	b.Offer("x", 1)
	sum, err := coordsample.CombineDispersed(cfg, []*coordsample.BottomK{a.Sketch(), b.Sketch()})
	if err != nil {
		panic(err)
	}
	for _, name := range []string{"aw", "discarded"} {
		est, err := coordsample.ParseEstimator(name)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s total = %.0f\n", est.Name(), est.Summary(sum, coordsample.TotalOf()).Estimate(nil))
	}
	_, err = coordsample.ParseEstimator("bogus")
	fmt.Println(err)
	// Output:
	// aw total = 6
	// discarded total = 6
	// unknown estimator "bogus" (want one of aw, discarded)
}

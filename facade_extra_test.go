package coordsample_test

import (
	"math"
	"math/rand"
	"testing"

	"coordsample"
)

func buildFacadeDataset(t *testing.T, n int, seed int64) *coordsample.Dataset {
	t.Helper()
	b := coordsample.NewDatasetBuilder("p1", "p2")
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		key := "k-" + itoa(i)
		base := math.Exp(rng.NormFloat64())
		if rng.Float64() < 0.85 {
			b.Add(0, key, base*(0.5+rng.Float64()))
		}
		if rng.Float64() < 0.85 {
			b.Add(1, key, base*(0.5+rng.Float64()))
		}
	}
	return b.Build()
}

func TestPublicAPIPoissonPipelines(t *testing.T) {
	ds := buildFacadeDataset(t, 800, 31)
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 7, K: 150}

	// Dataset-level Poisson pipeline.
	d := coordsample.SummarizeDispersedPoisson(cfg, ds)
	truth := ds.SumMax(nil, nil)
	if got := d.Max(nil).Estimate(nil); math.Abs(got-truth) > 0.3*truth {
		t.Fatalf("Poisson dispersed max %v too far from %v", got, truth)
	}

	// Manual sketcher + combine path.
	tau := coordsample.PoissonTau(coordsample.IPPS, ds.Column(0), float64(cfg.K))
	ps := coordsample.NewPoissonSketcher(cfg, 0, tau)
	for i := 0; i < ds.NumKeys(); i++ {
		if w := ds.Weight(0, i); w > 0 {
			ps.Offer(ds.Key(i), w)
		}
	}
	single, err := coordsample.CombineDispersedPoisson(cfg, []*coordsample.PoissonSketch{ps.Sketch()})
	if err != nil {
		t.Fatal(err)
	}
	truth0 := ds.SumSingle(0, nil)
	if got := single.Single(0).Estimate(nil); math.Abs(got-truth0) > 0.3*truth0 {
		t.Fatalf("Poisson single %v too far from %v", got, truth0)
	}

	// Colocated Poisson pipeline.
	c := coordsample.SummarizeColocatedPoisson(cfg, ds)
	if got := c.Inclusive(coordsample.MinOf()).Estimate(nil); math.Abs(got-ds.SumMin(nil, nil)) > 0.4*ds.SumMin(nil, nil) {
		t.Fatalf("Poisson colocated min %v too far from %v", got, ds.SumMin(nil, nil))
	}
}

func TestPublicAPIMergeSketches(t *testing.T) {
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 11, K: 64}
	// Three shards of one assignment, sketched separately.
	shards := make([]*coordsample.AssignmentSketcher, 3)
	for j := range shards {
		shards[j] = coordsample.NewAssignmentSketcher(cfg, 0)
	}
	whole := coordsample.NewAssignmentSketcher(cfg, 0)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		key := "shard-key-" + itoa(i)
		w := math.Exp(rng.NormFloat64())
		shards[i%3].Offer(key, w)
		whole.Offer(key, w)
	}
	merged, err := coordsample.MergeSketches(shards[0].Sketch(), shards[1].Sketch(), shards[2].Sketch())
	if err != nil {
		t.Fatal(err)
	}
	direct := whole.Sketch()
	if merged.Size() != direct.Size() || merged.Threshold() != direct.Threshold() {
		t.Fatalf("merged sketch differs: size %d/%d threshold %v/%v",
			merged.Size(), direct.Size(), merged.Threshold(), direct.Threshold())
	}
	for i, e := range merged.Entries() {
		if direct.Entries()[i] != e {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestPublicAPIStdErrAndTopKeys(t *testing.T) {
	ds := buildFacadeDataset(t, 1000, 41)
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 19, K: 200}
	sum := coordsample.SummarizeDispersed(cfg, ds)
	aw := sum.Max(nil)
	est, se := aw.EstimateWithStdErr(nil)
	truth := ds.SumMax(nil, nil)
	if se <= 0 {
		t.Fatal("standard error should be positive for a partial sample")
	}
	if math.Abs(est-truth) > 6*se {
		t.Fatalf("estimate %v ± %v too far from truth %v", est, se, truth)
	}
	top := aw.TopKeys(5)
	if len(top) != 5 {
		t.Fatalf("TopKeys returned %d", len(top))
	}
	// Top representatives must be among the heavier true keys: their true
	// max weight should each exceed the dataset median.
	for _, key := range top {
		i, ok := ds.KeyIndex(key)
		if !ok {
			t.Fatalf("top key %s not in dataset", key)
		}
		if math.Max(ds.Weight(0, i), ds.Weight(1, i)) <= 0 {
			t.Fatalf("top key %s has zero weight", key)
		}
	}
}

func TestPublicAPIIndependentL1Unbiased(t *testing.T) {
	// The signed L1 estimator for independent sketches (an extension enabled
	// by known seeds) must be unbiased even though per-key entries can be
	// negative.
	ds := buildFacadeDataset(t, 60, 47)
	truth := ds.SumRange(nil, nil)
	const trials = 3000
	var sum, sumSq float64
	for trial := 0; trial < trials; trial++ {
		cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.Independent,
			Seed: uint64(trial) + 1, K: 25}
		v := coordsample.SummarizeDispersed(cfg, ds).RangeLSet(nil).Estimate(nil)
		sum += v
		sumSq += v * v
	}
	n := float64(trials)
	mean := sum / n
	se := math.Sqrt((sumSq/n - mean*mean) / n)
	if math.Abs(mean-truth) > 4.5*se+1e-9 {
		t.Fatalf("independent L1 mean %v, truth %v, se %v", mean, truth, se)
	}
}
